#include "core/session.h"

#include <algorithm>

#include "common/check.h"

namespace vidur {

VidurSession::VidurSession(ModelSpec model, SessionOptions options)
    : model_(std::move(model)), options_(std::move(options)) {
  model_.validate();
  VIDUR_CHECK(!options_.tp_degrees.empty());
}

void VidurSession::onboard(const std::string& sku_name) {
  std::lock_guard lock(mutex_);
  if (estimators_.count(sku_name) > 0) return;
  NodeSpec node;
  node.sku = sku_by_name(sku_name);
  ProfileDb db =
      profile_model(model_, node, options_.tp_degrees, options_.profiler);
  estimators_[sku_name] =
      std::make_unique<RuntimeEstimator>(db, options_.estimator);
  profiles_.emplace(sku_name, std::move(db));
}

const ProfileDb& VidurSession::profile(const std::string& sku_name) {
  onboard(sku_name);
  std::lock_guard lock(mutex_);
  return profiles_.at(sku_name);
}

const RuntimeEstimator& VidurSession::estimator(const std::string& sku_name) {
  onboard(sku_name);
  std::lock_guard lock(mutex_);
  return *estimators_.at(sku_name);
}

SimulationConfig VidurSession::make_sim_config(
    const DeploymentConfig& config) const {
  SimulationConfig sim;
  sim.model = model_;
  // Pool deployments ignore the top-level SKU; the primary node is only a
  // placeholder for legacy fields (pool SKUs drive planning and billing).
  sim.node.sku = sku_by_name(
      config.pools.empty() ? config.sku_name : config.pools[0].sku_name);
  sim.parallel = config.parallel;
  sim.scheduler = config.scheduler;
  sim.global_scheduler = config.global_scheduler;
  sim.memory_utilization = options_.memory_utilization;
  sim.async_pipeline_comm = config.async_pipeline_comm;
  sim.collect_operator_metrics = options_.collect_operator_metrics;
  sim.disagg = config.disagg;
  sim.autoscale = config.autoscale;
  sim.pools = config.pools;
  sim.prefix_cache = config.prefix_cache;
  sim.faults = config.faults;
  sim.threads = config.threads;
  return sim;
}

double VidurSession::pool_capacity_weight(const PoolSpec& pool) {
  const RuntimeEstimator& est = estimator(pool.sku_name);
  ExecutionTimePredictor predictor(&est, model_, pool.parallel,
                                   options_.cpu_overhead);
  BatchSpec batch;
  BatchItem prefill;
  prefill.request = 0;
  prefill.q_tokens = 512;
  prefill.is_prefill = true;
  prefill.completes_prefill = true;
  batch.items.push_back(prefill);
  for (int i = 0; i < 31; ++i) {
    BatchItem decode;
    decode.request = i + 1;
    decode.q_tokens = 1;
    decode.kv_context = 512;
    batch.items.push_back(decode);
  }
  const BatchAggregates agg = batch.aggregates();
  Seconds total = predictor.cpu_overhead(batch);
  for (StageId stage = 0; stage < pool.parallel.pipeline_parallel; ++stage)
    total += predictor.stage_timing(batch, agg, stage).total();
  return total > 0 ? 1.0 / total : 0.0;
}

void VidurSession::prepare_pools(SimulationConfig& sim) {
  if (sim.pools.empty()) return;
  for (const PoolSpec& pool : sim.pools) onboard(pool.sku_name);
  // Derive capacities only when the spec set none: a partial mix would
  // compare user-supplied qps against estimator-derived iteration rates
  // (ExperimentSpec::validate rejects that; the simulator's FLOPs fallback
  // covers direct users).
  bool any_set = false;
  for (const PoolSpec& pool : sim.pools) any_set |= pool.capacity_qps > 0;
  if (any_set) return;
  for (PoolSpec& pool : sim.pools)
    pool.capacity_qps = pool_capacity_weight(pool);
}

namespace {

/// Fold the run's estimator-cache deltas into the registry snapshot, so the
/// counters travel with every ExperimentResult like native registry state.
void append_estimator_counters(SimulationMetrics& metrics) {
  auto& counters = metrics.registry.counters;
  counters.push_back(
      {"estimator.cache_hits",
       static_cast<std::uint64_t>(metrics.estimator_cache_hits)});
  counters.push_back(
      {"estimator.cache_misses",
       static_cast<std::uint64_t>(metrics.estimator_cache_misses)});
  std::sort(counters.begin(), counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
}

}  // namespace

void VidurSession::account(const SimulationMetrics& metrics,
                           const DeploymentConfig& config) {
  std::lock_guard lock(mutex_);
  simulated_gpu_seconds_ += metrics.makespan * config.total_gpus();
  ++num_simulations_;
}

SimulationMetrics VidurSession::simulate(
    const DeploymentConfig& config, const Trace& trace,
    const std::vector<TenantInfo>& tenants, const SimObs& obs) {
  SimulationConfig sim_config = make_sim_config(config);
  sim_config.tenants = tenants;
  sim_config.obs = obs;
  const ModelSpec& model = model_;
  const CpuOverheadModel cpu = options_.cpu_overhead;
  // The distinct estimators backing this run, for the cache-traffic deltas
  // attributed to it (pools sharing a SKU share one estimator).
  std::vector<const RuntimeEstimator*> used;
  BackendFactory factory;
  if (config.pools.empty()) {
    const RuntimeEstimator& est = estimator(config.sku_name);
    used.push_back(&est);
    const ParallelConfig parallel = config.parallel;
    factory = [&est, &model, parallel, cpu](ReplicaId) {
      return std::make_unique<ExecutionTimePredictor>(&est, model, parallel,
                                                      cpu);
    };
  } else {
    prepare_pools(sim_config);
    // Each slot gets a predictor against its pool's per-SKU estimator.
    std::vector<const RuntimeEstimator*> estimators;
    std::vector<ParallelConfig> parallels;
    for (const PoolSpec& pool : sim_config.pools) {
      const RuntimeEstimator* est = &estimator(pool.sku_name);
      estimators.push_back(est);
      parallels.push_back(pool.parallel);
      if (std::find(used.begin(), used.end(), est) == used.end())
        used.push_back(est);
    }
    factory = [estimators = std::move(estimators),
               parallels = std::move(parallels),
               slot_pool = pool_slot_layout(sim_config.pools), &model,
               cpu](ReplicaId r) {
      const auto p = static_cast<std::size_t>(
          slot_pool[static_cast<std::size_t>(r)]);
      return std::make_unique<ExecutionTimePredictor>(estimators[p], model,
                                                      parallels[p], cpu);
    };
  }
  std::size_t hits_before = 0, misses_before = 0;
  for (const RuntimeEstimator* est : used) {
    hits_before += est->cache_hits();
    misses_before += est->cache_misses();
  }
  Simulator sim(sim_config, trace, std::move(factory));
  SimulationMetrics metrics = sim.run();
  std::size_t hits_after = 0, misses_after = 0;
  for (const RuntimeEstimator* est : used) {
    hits_after += est->cache_hits();
    misses_after += est->cache_misses();
  }
  metrics.estimator_cache_hits =
      static_cast<std::int64_t>(hits_after - hits_before);
  metrics.estimator_cache_misses =
      static_cast<std::int64_t>(misses_after - misses_before);
  append_estimator_counters(metrics);
  account(metrics, config);
  return metrics;
}

SimulationMetrics VidurSession::simulate_reference(
    const DeploymentConfig& config, const Trace& trace, std::uint64_t seed,
    const std::vector<TenantInfo>& tenants, const SimObs& obs) {
  SimulationConfig sim_config = make_sim_config(config);
  sim_config.tenants = tenants;
  sim_config.obs = obs;
  const ModelSpec& model = model_;
  const CpuOverheadModel cpu = options_.cpu_overhead;
  BackendFactory factory;
  if (config.pools.empty()) {
    const ParallelConfig parallel = config.parallel;
    const NodeSpec node = sim_config.node;
    factory = [&model, node, parallel, cpu, seed](ReplicaId replica) {
      return std::make_unique<ReferenceExecutor>(
          node, model, parallel, seed * 0x9e3779b97f4a7c15ULL + replica,
          cpu);
    };
  } else {
    prepare_pools(sim_config);
    std::vector<NodeSpec> nodes;
    std::vector<ParallelConfig> parallels;
    for (const PoolSpec& pool : sim_config.pools) {
      NodeSpec node = sim_config.node;
      node.sku = sku_by_name(pool.sku_name);
      nodes.push_back(node);
      parallels.push_back(pool.parallel);
    }
    factory = [nodes = std::move(nodes), parallels = std::move(parallels),
               slot_pool = pool_slot_layout(sim_config.pools), &model, cpu,
               seed](ReplicaId replica) {
      const auto p = static_cast<std::size_t>(
          slot_pool[static_cast<std::size_t>(replica)]);
      return std::make_unique<ReferenceExecutor>(
          nodes[p], model, parallels[p],
          seed * 0x9e3779b97f4a7c15ULL + replica, cpu);
    };
  }
  Simulator sim(sim_config, trace, std::move(factory));
  // Reference runs are not counted as simulated GPU time: they represent
  // what the paper executes on the real testbed.
  return sim.run();
}

double VidurSession::simulated_gpu_seconds() const {
  std::lock_guard lock(mutex_);
  return simulated_gpu_seconds_;
}

std::int64_t VidurSession::num_simulations() const {
  std::lock_guard lock(mutex_);
  return num_simulations_;
}

}  // namespace vidur
