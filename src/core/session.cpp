#include "core/session.h"

#include "common/check.h"

namespace vidur {

VidurSession::VidurSession(ModelSpec model, SessionOptions options)
    : model_(std::move(model)), options_(std::move(options)) {
  model_.validate();
  VIDUR_CHECK(!options_.tp_degrees.empty());
}

void VidurSession::onboard(const std::string& sku_name) {
  std::lock_guard lock(mutex_);
  if (estimators_.count(sku_name) > 0) return;
  NodeSpec node;
  node.sku = sku_by_name(sku_name);
  ProfileDb db =
      profile_model(model_, node, options_.tp_degrees, options_.profiler);
  estimators_[sku_name] =
      std::make_unique<RuntimeEstimator>(db, options_.estimator);
  profiles_.emplace(sku_name, std::move(db));
}

const ProfileDb& VidurSession::profile(const std::string& sku_name) {
  onboard(sku_name);
  std::lock_guard lock(mutex_);
  return profiles_.at(sku_name);
}

const RuntimeEstimator& VidurSession::estimator(const std::string& sku_name) {
  onboard(sku_name);
  std::lock_guard lock(mutex_);
  return *estimators_.at(sku_name);
}

SimulationConfig VidurSession::make_sim_config(
    const DeploymentConfig& config) const {
  SimulationConfig sim;
  sim.model = model_;
  sim.node.sku = sku_by_name(config.sku_name);
  sim.parallel = config.parallel;
  sim.scheduler = config.scheduler;
  sim.global_scheduler = config.global_scheduler;
  sim.memory_utilization = options_.memory_utilization;
  sim.async_pipeline_comm = config.async_pipeline_comm;
  sim.collect_operator_metrics = options_.collect_operator_metrics;
  sim.disagg = config.disagg;
  sim.autoscale = config.autoscale;
  return sim;
}

void VidurSession::account(const SimulationMetrics& metrics,
                           const DeploymentConfig& config) {
  std::lock_guard lock(mutex_);
  simulated_gpu_seconds_ += metrics.makespan * config.total_gpus();
  ++num_simulations_;
}

SimulationMetrics VidurSession::simulate(
    const DeploymentConfig& config, const Trace& trace,
    const std::vector<TenantInfo>& tenants) {
  const RuntimeEstimator& est = estimator(config.sku_name);
  SimulationConfig sim_config = make_sim_config(config);
  sim_config.tenants = tenants;
  const ModelSpec& model = model_;
  const CpuOverheadModel cpu = options_.cpu_overhead;
  const ParallelConfig parallel = config.parallel;
  Simulator sim(sim_config, trace, [&est, &model, parallel, cpu](ReplicaId) {
    return std::make_unique<ExecutionTimePredictor>(&est, model, parallel,
                                                    cpu);
  });
  SimulationMetrics metrics = sim.run();
  account(metrics, config);
  return metrics;
}

SimulationMetrics VidurSession::simulate_reference(
    const DeploymentConfig& config, const Trace& trace, std::uint64_t seed,
    const std::vector<TenantInfo>& tenants) {
  SimulationConfig sim_config = make_sim_config(config);
  sim_config.tenants = tenants;
  const ModelSpec& model = model_;
  const CpuOverheadModel cpu = options_.cpu_overhead;
  const ParallelConfig parallel = config.parallel;
  const NodeSpec node = sim_config.node;
  Simulator sim(sim_config, trace,
                [&model, node, parallel, cpu, seed](ReplicaId replica) {
                  return std::make_unique<ReferenceExecutor>(
                      node, model, parallel,
                      seed * 0x9e3779b97f4a7c15ULL + replica, cpu);
                });
  // Reference runs are not counted as simulated GPU time: they represent
  // what the paper executes on the real testbed.
  return sim.run();
}

double VidurSession::simulated_gpu_seconds() const {
  std::lock_guard lock(mutex_);
  return simulated_gpu_seconds_;
}

std::int64_t VidurSession::num_simulations() const {
  std::lock_guard lock(mutex_);
  return num_simulations_;
}

}  // namespace vidur
