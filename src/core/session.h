// VidurSession: the library's main entry point.
//
// Owns model onboarding (paper Fig. 2, components 1-3): profiling the model's
// operators on each SKU and training the runtime estimator — then runs
// simulations of arbitrary deployment configurations against request traces:
//
//   VidurSession session(model_by_name("llama2-70b"));
//   DeploymentConfig config = ...;
//   Trace trace = generate_trace(trace_by_name("chat1m"), arrivals, 500, 1);
//   SimulationMetrics m = session.simulate(config, trace);
//
// `simulate()` uses the runtime-estimator predictor (Vidur proper);
// `simulate_reference()` replays the same deployment on the ground-truth
// executor with measurement jitter — the stand-in for a real testbed run,
// used by the fidelity experiments (paper §7.2).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/deployment.h"
#include "estimator/runtime_estimator.h"
#include "execution/execution_backend.h"
#include "metrics/metrics.h"
#include "model/model_spec.h"
#include "profiler/profiler.h"
#include "sim/simulator.h"
#include "workload/request.h"

namespace vidur {

struct SessionOptions {
  ProfilerOptions profiler;
  RuntimeEstimator::Options estimator;
  CpuOverheadModel cpu_overhead;
  double memory_utilization = 0.9;
  /// TP degrees profiled during onboarding (must cover every simulated TP).
  std::vector<int> tp_degrees = {1, 2, 4};
  /// Gather per-operator time attribution in every simulation (paper §5.2).
  bool collect_operator_metrics = false;
};

class VidurSession {
 public:
  explicit VidurSession(ModelSpec model)
      : VidurSession(std::move(model), SessionOptions{}) {}
  VidurSession(ModelSpec model, SessionOptions options);

  const ModelSpec& model() const { return model_; }
  const SessionOptions& options() const { return options_; }

  /// Profile + train the estimator for a SKU (idempotent; simulate() calls
  /// this lazily). Thread-safe.
  void onboard(const std::string& sku_name);

  const ProfileDb& profile(const std::string& sku_name);
  const RuntimeEstimator& estimator(const std::string& sku_name);

  /// Vidur simulation: runtime-estimator backend. Thread-safe. Pass the
  /// scenario's tenant identities to get per-tenant metric breakdowns for a
  /// tenant-tagged trace (see src/scenario/). `obs` attaches observability
  /// (trace recorder, shared registry, rolling windows — src/obs/); the
  /// defaults record nothing extra.
  SimulationMetrics simulate(const DeploymentConfig& config,
                             const Trace& trace,
                             const std::vector<TenantInfo>& tenants = {},
                             const SimObs& obs = {});

  /// Ground-truth replay of the same deployment ("Real" bars in Fig. 3/4).
  SimulationMetrics simulate_reference(
      const DeploymentConfig& config, const Trace& trace, std::uint64_t seed,
      const std::vector<TenantInfo>& tenants = {}, const SimObs& obs = {});

  /// Total simulated GPU time across every simulate() call (used by the
  /// Table 2 cost-savings accounting: this is what the runs would have cost
  /// on real hardware).
  double simulated_gpu_seconds() const;
  std::int64_t num_simulations() const;

 private:
  SimulationConfig make_sim_config(const DeploymentConfig& config) const;
  void account(const SimulationMetrics& metrics,
               const DeploymentConfig& config);
  /// Onboard every pool's SKU and fill unset per-pool capacities with the
  /// estimator-derived relative throughput (pool_capacity_weight); the
  /// cost-aware scale-out policy ranks pools by $/SLO-point with these.
  void prepare_pools(SimulationConfig& sim);
  /// Relative per-replica capacity of one pool: the reciprocal predicted
  /// time of a canonical continuous-batching iteration (one 512-token
  /// prefill chunk + 31 decodes at 512 KV context) across the pool's
  /// pipeline, from the RuntimeEstimator's per-SKU predictions.
  double pool_capacity_weight(const PoolSpec& pool);

  ModelSpec model_;
  SessionOptions options_;
  std::map<std::string, ProfileDb> profiles_;
  std::map<std::string, std::unique_ptr<RuntimeEstimator>> estimators_;
  mutable std::mutex mutex_;
  double simulated_gpu_seconds_ = 0.0;
  std::int64_t num_simulations_ = 0;
};

}  // namespace vidur
