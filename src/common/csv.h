// Minimal CSV reader/writer. Used for profile databases (the analogue of
// Vidur's published profiling data) and metric dumps. Values never contain
// commas/quotes in our schemas, so no quoting logic is needed; the reader
// still tolerates surrounding whitespace.
#pragma once

#include <string>
#include <vector>

namespace vidur {

/// A parsed CSV document: a header row plus data rows of equal width.
struct CsvDocument {
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column; throws vidur::Error when missing.
  std::size_t column(const std::string& name) const;
  /// Index of a named column, or npos when absent (optional columns).
  std::size_t try_column(const std::string& name) const;
};

/// Parse CSV text. Throws vidur::Error on ragged rows.
CsvDocument parse_csv(const std::string& text);

/// Read and parse a CSV file. Throws vidur::Error if unreadable.
CsvDocument read_csv_file(const std::string& path);

/// Incremental CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  std::string str() const;
  void write_file(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vidur
