// Precondition / invariant checking.
//
// VIDUR_CHECK throws vidur::Error on violation; it is used for conditions
// that depend on user-supplied configuration or on cross-module contracts.
// It is always on (release builds included): the simulator is a research
// tool where a wrong answer is far more expensive than a branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace vidur {

/// Exception thrown by all vidur precondition and invariant failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "VIDUR_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace vidur

#define VIDUR_CHECK(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::vidur::detail::check_failed(#cond, __FILE__, __LINE__, "");      \
  } while (false)

#define VIDUR_CHECK_MSG(cond, msg)                                       \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream vidur_check_os_;                                \
      vidur_check_os_ << msg;                                            \
      ::vidur::detail::check_failed(#cond, __FILE__, __LINE__,           \
                                    vidur_check_os_.str());              \
    }                                                                    \
  } while (false)
