// Streaming and sample-based statistics used by metric collection and the
// trace generators.
#pragma once

#include <cstddef>
#include <vector>

namespace vidur {

/// Welford streaming statistics: O(1) memory mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< population variance; 0 when count < 2
  double stddev() const;
  double min() const;  ///< +inf when empty
  double max() const;  ///< -inf when empty
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains every sample; supports exact quantiles. Metric series in a
/// simulation are bounded by the request count so retention is cheap.
class SampleSeries {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double sum() const;
  double min() const;
  double max() const;
  double stddev() const;

  /// Exact quantile with linear interpolation, q in [0, 1].
  /// Requires a non-empty series.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& samples() const { return samples_; }
  void merge(const SampleSeries& other);

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;      // lazily maintained cache
  mutable bool sorted_valid_ = false;
  void ensure_sorted() const;
};

/// Compact summary of a series, convenient for reports and CSV rows.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  static Summary of(const SampleSeries& s);
};

}  // namespace vidur
