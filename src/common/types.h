// Core value types and units shared by every vidur subsystem.
//
// Simulation time is kept in double-precision seconds; LLM inference
// iterations are O(1ms-1s), well within double resolution over multi-hour
// simulated horizons. Token counts and byte counts are signed 64-bit so that
// arithmetic on differences never wraps.
#pragma once

#include <cstdint>
#include <limits>

namespace vidur {

/// Simulation time in seconds.
using Seconds = double;

/// Number of tokens (prompt, decode, KV-cache entries, ...).
using TokenCount = std::int64_t;

/// Number of bytes (weights, KV-cache, activations, network transfers).
using ByteCount = std::int64_t;

/// Floating-point operation count.
using FlopCount = double;

/// Monotonically increasing request identifier, unique within a simulation.
using RequestId = std::int64_t;

/// Index of a model replica within the cluster, in [0, num_replicas).
using ReplicaId = std::int32_t;

/// Index of a tenant within a multi-tenant scenario, in [0, num_tenants).
/// Single-tenant workloads leave every request at tenant 0.
using TenantId = std::int32_t;

/// Index of a pipeline stage within a replica, in [0, pp_degree).
using StageId = std::int32_t;

inline constexpr Seconds kInfiniteTime = std::numeric_limits<double>::infinity();

/// Bytes per parameter / activation element (fp16 inference throughout).
inline constexpr ByteCount kBytesPerElement = 2;

/// Tokens per paged KV-cache block (vLLM default).
inline constexpr TokenCount kKvBlockSize = 16;

}  // namespace vidur
