#include "common/thread_pool.h"

#include <algorithm>

namespace vidur {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) pool.submit([&fn, i] { fn(i); });
  pool.wait_idle();
}

}  // namespace vidur
