#include "common/thread_pool.h"

#include <algorithm>

namespace vidur {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) pool.submit([&fn, i] { fn(i); });
  pool.wait_idle();
}

namespace {

/// Spin briefly, then yield: fast handoff when a core is free, fair
/// degradation when workers outnumber cores (including the 1-core case,
/// where pure spinning would serialize behind the OS scheduler's quantum).
inline void backoff(int& spins) {
  if (++spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
    return;
  }
  std::this_thread::yield();
}

}  // namespace

SpinTeam::SpinTeam(std::size_t size) {
  if (size < 1) size = 1;
  threads_.reserve(size - 1);
  for (std::size_t w = 1; w < size; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

SpinTeam::~SpinTeam() {
  stopping_.store(true, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  for (auto& t : threads_) t.join();
}

void SpinTeam::capture_exception() {
  std::lock_guard lock(exception_mutex_);
  if (!first_exception_) first_exception_ = std::current_exception();
}

void SpinTeam::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    int spins = 0;
    while (epoch_.load(std::memory_order_acquire) == seen) backoff(spins);
    ++seen;
    if (stopping_.load(std::memory_order_relaxed)) return;
    try {
      (*fn_)(worker);
    } catch (...) {
      capture_exception();
    }
    done_.fetch_add(1, std::memory_order_release);
  }
}

void SpinTeam::run(const std::function<void(std::size_t)>& fn) {
  if (threads_.empty()) {
    fn(0);
    return;
  }
  fn_ = &fn;
  done_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  try {
    fn(0);
  } catch (...) {
    capture_exception();
  }
  int spins = 0;
  while (done_.load(std::memory_order_acquire) != threads_.size())
    backoff(spins);
  fn_ = nullptr;
  if (first_exception_) {
    std::exception_ptr e = first_exception_;
    first_exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace vidur
