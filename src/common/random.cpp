#include "common/random.h"

#include <cmath>

namespace vidur {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork() { return Rng((*this)() ^ 0xd3833e804f4c574bULL); }

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  VIDUR_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  VIDUR_CHECK(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0} / range) * range;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  VIDUR_CHECK(rate > 0);
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::gamma(double shape, double scale) {
  VIDUR_CHECK(shape > 0 && scale > 0);
  if (shape < 1.0) {
    // Boost shape above 1, then apply the standard power correction.
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

bool Rng::bernoulli(double p) { return uniform() < p; }

}  // namespace vidur
