// Fixed-size worker pool used by Vidur-Search to evaluate deployment
// configurations in parallel (the paper runs each capacity search on its own
// CPU core).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vidur {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1 enforced).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw; wrap fallible work yourself.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace vidur
