// Fixed-size worker pool used by Vidur-Search to evaluate deployment
// configurations in parallel (the paper runs each capacity search on its own
// CPU core).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vidur {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1 enforced).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw; wrap fallible work yourself.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Persistent fork-join team for the sharded simulator's window rounds.
/// ThreadPool's mutex/condvar handoff costs microseconds per dispatch; a
/// windowed simulation runs hundreds of thousands of rounds, so the round
/// barrier must cost nanoseconds when cores are available. Workers spin on
/// an epoch counter (briefly — they fall back to yield(), so an
/// oversubscribed or single-core host degrades to scheduler-fair
/// progress instead of livelock).
///
/// run(fn) invokes fn(worker) for worker in [0, size()) — the caller
/// participates as worker 0, the size()-1 internal threads take the rest —
/// and returns when all have finished. The first exception thrown by any
/// worker is rethrown from run() after the barrier.
class SpinTeam {
 public:
  /// Creates a team of `size` workers (>= 1 enforced); `size - 1` threads
  /// are spawned, the caller of run() acts as the remaining worker.
  explicit SpinTeam(std::size_t size);
  ~SpinTeam();

  SpinTeam(const SpinTeam&) = delete;
  SpinTeam& operator=(const SpinTeam&) = delete;

  void run(const std::function<void(std::size_t)>& fn);

  std::size_t size() const { return threads_.size() + 1; }

 private:
  void worker_loop(std::size_t worker);
  void capture_exception();

  std::vector<std::thread> threads_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> done_{0};
  std::atomic<bool> stopping_{false};
  std::mutex exception_mutex_;
  std::exception_ptr first_exception_;
};

/// std::thread::hardware_concurrency() clamped to >= 1. The standard
/// permits a 0 return when the count is not computable; every consumer
/// here (pool sizing, bench metadata) needs a positive thread count, so
/// this is the one place the clamp lives.
inline unsigned hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

}  // namespace vidur
