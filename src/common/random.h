// Deterministic random number generation.
//
// The simulator must be bit-reproducible for a given seed across runs and
// compilers, so we implement both the engine (xoshiro256++) and every
// distribution we need (std:: distributions are not specified exactly).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/check.h"

namespace vidur {

/// splitmix64: used to expand a single seed into engine state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Derive an independent child stream (for per-replica / per-request
  /// streams that must not depend on consumption order elsewhere).
  Rng fork();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);
  /// Gamma(shape, scale) via Marsaglia-Tsang. Requires shape, scale > 0.
  double gamma(double shape, double scale);
  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Deterministic Fisher-Yates shuffle (std::shuffle is not specified
  /// exactly, so it would break cross-compiler reproducibility).
  template <typename Container>
  void shuffle(Container& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace vidur
