#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace vidur {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  return count_ == 0 ? std::numeric_limits<double>::infinity() : min_;
}

double RunningStats::max() const {
  return count_ == 0 ? -std::numeric_limits<double>::infinity() : max_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ = (n1 * mean_ + n2 * other.mean_) / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSeries::ensure_sorted() const {
  if (sorted_valid_ && sorted_.size() == samples_.size()) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double SampleSeries::mean() const {
  if (samples_.empty()) return 0.0;
  return sum() / static_cast<double>(samples_.size());
}

double SampleSeries::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double SampleSeries::min() const {
  if (samples_.empty()) return std::numeric_limits<double>::infinity();
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSeries::max() const {
  if (samples_.empty()) return -std::numeric_limits<double>::infinity();
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSeries::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double SampleSeries::quantile(double q) const {
  VIDUR_CHECK_MSG(!samples_.empty(), "quantile of an empty series");
  VIDUR_CHECK(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void SampleSeries::merge(const SampleSeries& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_valid_ = false;
}

Summary Summary::of(const SampleSeries& s) {
  Summary out;
  out.count = s.count();
  if (s.empty()) return out;
  out.mean = s.mean();
  out.stddev = s.stddev();
  out.min = s.min();
  out.p50 = s.quantile(0.50);
  out.p90 = s.quantile(0.90);
  out.p95 = s.quantile(0.95);
  out.p99 = s.quantile(0.99);
  out.max = s.max();
  return out;
}

}  // namespace vidur
