#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace vidur {

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  VIDUR_CHECK(!header_.empty());
}

void ConsoleTable::add_row(std::vector<std::string> row) {
  VIDUR_CHECK_MSG(row.size() == header_.size(),
                  "table row width " << row.size() << " != header width "
                                     << header_.size());
  rows_.push_back(std::move(row));
}

std::string ConsoleTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i)
    widths[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    os << "| ";
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i])) << row[i];
      os << " | ";
    }
    std::string s = os.str();
    s.pop_back();  // trailing space
    return s;
  };

  std::ostringstream os;
  os << render_row(header_) << '\n';
  std::size_t total = 1;
  for (auto w : widths) total += w + 3;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) os << render_row(row) << '\n';
  return os.str();
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

}  // namespace vidur
