#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace vidur {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) fields.push_back(trim(field));
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

}  // namespace

std::size_t CsvDocument::try_column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return i;
  return npos;
}

std::size_t CsvDocument::column(const std::string& name) const {
  const std::size_t index = try_column(name);
  if (index == npos) throw Error("CSV column not found: " + name);
  return index;
}

CsvDocument parse_csv(const std::string& text) {
  CsvDocument doc;
  std::istringstream is(text);
  std::string line;
  bool saw_header = false;
  while (std::getline(is, line)) {
    if (trim(line).empty()) continue;
    auto fields = split_line(line);
    if (!saw_header) {
      doc.header = std::move(fields);
      saw_header = true;
      continue;
    }
    VIDUR_CHECK_MSG(fields.size() == doc.header.size(),
                    "ragged CSV row: expected " << doc.header.size()
                                                << " fields, got "
                                                << fields.size());
    doc.rows.push_back(std::move(fields));
  }
  return doc;
}

CsvDocument read_csv_file(const std::string& path) {
  std::ifstream in(path);
  VIDUR_CHECK_MSG(in.good(), "cannot open CSV file: " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  VIDUR_CHECK(!header_.empty());
}

void CsvWriter::add_row(std::vector<std::string> row) {
  VIDUR_CHECK_MSG(row.size() == header_.size(),
                  "CSV row width " << row.size() << " != header width "
                                   << header_.size());
  rows_.push_back(std::move(row));
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << header_[i];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  }
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  VIDUR_CHECK_MSG(out.good(), "cannot write CSV file: " << path);
  out << str();
}

}  // namespace vidur
