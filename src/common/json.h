// Dependency-free JSON document type with an ordered-object writer and a
// strict recursive-descent parser.
//
// JsonValue backs every machine-readable artifact in the repo: the
// declarative experiment specs (src/api/), the CLI, and the BENCH_*.json
// bench summaries. Integers are stored as int64 (not double) so that ids
// and seeds round-trip losslessly; object members keep insertion order so
// dumps are stable and diffable.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace vidur {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// Members keep insertion order; set() overwrites an existing key.
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool v) : value_(v) {}
  JsonValue(int v) : value_(static_cast<std::int64_t>(v)) {}
  JsonValue(std::int64_t v) : value_(v) {}
  JsonValue(std::size_t v) : value_(static_cast<std::int64_t>(v)) {}
  JsonValue(double v) : value_(v) {}
  JsonValue(const char* v) : value_(std::string(v)) {}
  JsonValue(std::string v) : value_(std::move(v)) {}

  static JsonValue object() { JsonValue j; j.value_ = Object{}; return j; }
  static JsonValue array() { JsonValue j; j.value_ = Array{}; return j; }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  /// True for both integral and floating numbers.
  bool is_number() const {
    return is_int() || std::holds_alternative<double>(value_);
  }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }

  /// Typed accessors; throw vidur::Error on a type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;  ///< exact integers only (no doubles)
  double as_double() const;     ///< any number
  const std::string& as_string() const;
  const Array& items() const;
  const Object& members() const;

  /// Object member assignment (overwrites an existing key). Requires
  /// object(); throws otherwise.
  JsonValue& set(const std::string& key, JsonValue v);
  /// Member lookup, nullptr when absent. Requires an object.
  const JsonValue* find(const std::string& key) const;
  /// Member lookup; throws vidur::Error naming the missing key.
  const JsonValue& at(const std::string& key) const;

  /// Array append. Requires array(); throws otherwise.
  JsonValue& push(JsonValue v);
  /// Element count of an array or object; throws otherwise.
  std::size_t size() const;

  /// Render as pretty-printed JSON text (trailing newline included).
  /// Doubles print with the fewest digits that parse back exactly;
  /// non-finite doubles render as null (JSON has no NaN/inf).
  std::string dump(int indent = 2) const;

  /// Parse a complete JSON document. Throws vidur::Error with line/column
  /// context on malformed input or trailing garbage.
  static JsonValue parse(const std::string& text);

  bool operator==(const JsonValue&) const = default;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               Object, Array>
      value_;

  void write(std::string& out, int indent, int depth) const;
};

}  // namespace vidur
