#include "common/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/check.h"

namespace vidur {

bool JsonValue::as_bool() const {
  const auto* b = std::get_if<bool>(&value_);
  VIDUR_CHECK_MSG(b != nullptr, "JSON value is not a boolean");
  return *b;
}

std::int64_t JsonValue::as_int() const {
  const auto* i = std::get_if<std::int64_t>(&value_);
  VIDUR_CHECK_MSG(i != nullptr, "JSON value is not an integer");
  return *i;
}

double JsonValue::as_double() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_))
    return static_cast<double>(*i);
  const auto* d = std::get_if<double>(&value_);
  VIDUR_CHECK_MSG(d != nullptr, "JSON value is not a number");
  return *d;
}

const std::string& JsonValue::as_string() const {
  const auto* s = std::get_if<std::string>(&value_);
  VIDUR_CHECK_MSG(s != nullptr, "JSON value is not a string");
  return *s;
}

const JsonValue::Array& JsonValue::items() const {
  const auto* a = std::get_if<Array>(&value_);
  VIDUR_CHECK_MSG(a != nullptr, "JSON value is not an array");
  return *a;
}

const JsonValue::Object& JsonValue::members() const {
  const auto* o = std::get_if<Object>(&value_);
  VIDUR_CHECK_MSG(o != nullptr, "JSON value is not an object");
  return *o;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  auto* obj = std::get_if<Object>(&value_);
  VIDUR_CHECK_MSG(obj != nullptr, "JsonValue::set on a non-object");
  for (auto& [k, existing] : *obj) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj->emplace_back(key, std::move(v));
  return *this;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  const auto* obj = std::get_if<Object>(&value_);
  VIDUR_CHECK_MSG(obj != nullptr, "JsonValue::find on a non-object");
  for (const auto& [k, v] : *obj)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  VIDUR_CHECK_MSG(v != nullptr, "JSON object has no member '" << key << "'");
  return *v;
}

JsonValue& JsonValue::push(JsonValue v) {
  auto* arr = std::get_if<Array>(&value_);
  VIDUR_CHECK_MSG(arr != nullptr, "JsonValue::push on a non-array");
  arr->push_back(std::move(v));
  return *this;
}

std::size_t JsonValue::size() const {
  if (const auto* a = std::get_if<Array>(&value_)) return a->size();
  if (const auto* o = std::get_if<Object>(&value_)) return o->size();
  throw Error("JsonValue::size on a non-container");
}

// --------------------------------------------------------------- writer

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Remaining control characters are invalid raw in JSON strings.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_double(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no NaN/inf
    return;
  }
  // Shortest representation that parses back exactly: try the compact
  // 12-significant-digit form first (covers every human-entered value),
  // fall back to the full 17 digits when it does not round-trip.
  std::ostringstream os;
  os.precision(12);
  os << d;
  if (std::strtod(os.str().c_str(), nullptr) != d) {
    os.str({});
    os.precision(17);
    os << d;
  }
  std::string text = os.str();
  // Whole-valued doubles keep a decimal point so the value reparses as a
  // double, preserving the parse(dump()) type identity (ints stay ints,
  // doubles stay doubles).
  if (text.find_first_of(".eE") == std::string::npos) text += ".0";
  out += text;
}

}  // namespace

void JsonValue::write(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent * depth), ' ');
  if (is_null()) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&value_)) {
    write_double(out, *d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    write_escaped(out, *s);
  } else if (const auto* obj = std::get_if<Object>(&value_)) {
    if (obj->empty()) {
      out += "{}";
      return;
    }
    out += "{\n";
    for (std::size_t i = 0; i < obj->size(); ++i) {
      out += pad;
      write_escaped(out, (*obj)[i].first);
      out += ": ";
      (*obj)[i].second.write(out, indent, depth + 1);
      if (i + 1 < obj->size()) out += ',';
      out += '\n';
    }
    out += close_pad + "}";
  } else if (const auto* arr = std::get_if<Array>(&value_)) {
    if (arr->empty()) {
      out += "[]";
      return;
    }
    out += "[\n";
    for (std::size_t i = 0; i < arr->size(); ++i) {
      out += pad;
      (*arr)[i].write(out, indent, depth + 1);
      if (i + 1 < arr->size()) out += ',';
      out += '\n';
    }
    out += close_pad + "]";
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  out += '\n';
  return out;
}

// --------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    // Line/column of the current position, for actionable spec errors.
    int line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "JSON parse error at line " << line << ", column " << col << ": "
       << what;
    throw Error(os.str());
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    // Containers recurse once per nesting level; cap the depth so hostile
    // or corrupted input fails with a parse error, not a stack overflow.
    if (depth_ > kMaxDepth) fail("nesting deeper than 256 levels");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    ++depth_;
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return obj;
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected a quoted object key");
      std::string key = parse_string();
      if (obj.find(key) != nullptr) fail("duplicate object key '" + key + "'");
      skip_whitespace();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      --depth_;
      return obj;
    }
  }

  JsonValue parse_array() {
    ++depth_;
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      --depth_;
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape sequence");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    unsigned cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (!consume_literal("\\u")) fail("unpaired UTF-16 surrogate");
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid UTF-16 surrogate pair");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired UTF-16 surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      fail("invalid number");
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0')
        return JsonValue(static_cast<std::int64_t>(v));
      // Out of int64 range: fall through to double.
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number '" + token + "'");
    // strtod turns an overflowing literal (typo'd exponent) into infinity;
    // accepting that would silently corrupt the document. Underflow to a
    // (finite) tiny value stays accepted.
    if (!std::isfinite(d)) fail("number '" + token + "' is out of range");
    return JsonValue(d);
  }

  static constexpr int kMaxDepth = 256;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace vidur
