// Console table rendering for the benchmark harnesses: every bench binary
// prints the paper's table/figure rows through this formatter.
#pragma once

#include <string>
#include <vector>

namespace vidur {

/// Right-pads/aligns columns and renders an ASCII table.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Render with column separators and a header rule.
  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given precision (fixed notation).
std::string fmt_double(double v, int precision = 3);

/// Format a fraction as a percentage string, e.g. 0.0123 -> "1.23%".
std::string fmt_percent(double fraction, int precision = 2);

}  // namespace vidur
