// Metric collection (Vidur-Bench, paper §5.2): request-level, replica-level
// and cluster-level performance metrics gathered during a simulation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/replica_state.h"
#include "common/stats.h"
#include "common/types.h"
#include "execution/batch_spec.h"
#include "model/model_spec.h"
#include "obs/registry.h"
#include "obs/rolling.h"
#include "operators/op_type.h"

namespace vidur {

/// Latency targets for one tenant's traffic. A request meets its SLO when it
/// completes and every enabled target holds: TTFT within `ttft_target`, and
/// the worst inter-token gap within `tbt_target`. Zero disables a target.
struct SloSpec {
  Seconds ttft_target = 0.0;
  Seconds tbt_target = 0.0;

  bool enabled() const { return ttft_target > 0.0 || tbt_target > 0.0; }

  bool operator==(const SloSpec&) const = default;
};

/// Identity of one tenant for metric attribution (name, priority, SLO).
/// The scenario engine builds these; hand-rolled simulations may pass their
/// own to get per-tenant breakdowns on any tagged trace.
struct TenantInfo {
  TenantId id = 0;
  std::string name;
  int priority = 0;
  SloSpec slo;
};

/// Per-request lifecycle timestamps, filled in by the scheduler stack.
struct RequestRecord {
  RequestId id = -1;
  TenantId tenant = 0;
  Seconds arrival_time = 0.0;
  Seconds first_scheduled_time = -1.0;
  Seconds prefill_completed_time = -1.0;  ///< first output token (TTFT end)
  Seconds completed_time = -1.0;
  TokenCount prefill_tokens = 0;
  TokenCount decode_tokens = 0;
  int num_restarts = 0;  ///< vLLM-style preempt-and-restart events
  int num_retries = 0;   ///< replica-failure retries (backoff + re-route)
  int num_handoffs = 0;  ///< queued-on-a-dead-replica immediate re-routes
  bool shed = false;     ///< dropped by the graceful-degradation floor
  bool lost = false;     ///< recovery attempts exhausted (terminal)
  std::vector<Seconds> token_times;  ///< decode-token emission times (TBT)

  bool completed() const { return completed_time >= 0.0; }
  /// Touched by a fault: displaced, handed off, shed or lost.
  bool fault_impacted() const {
    return num_retries > 0 || num_handoffs > 0 || shed || lost;
  }
  Seconds scheduling_delay() const {
    return first_scheduled_time - arrival_time;
  }
  Seconds ttft() const { return prefill_completed_time - arrival_time; }
  Seconds e2e_latency() const { return completed_time - arrival_time; }
  /// End-to-end latency per output token (the paper's normalized latency).
  Seconds normalized_e2e_latency() const {
    return e2e_latency() / static_cast<double>(decode_tokens);
  }
  /// Execution-only latency per output token (static-workload metric,
  /// paper §7.2: excludes scheduling delay).
  Seconds normalized_execution_latency() const {
    return (completed_time - first_scheduled_time) /
           static_cast<double>(decode_tokens);
  }
};

/// One executed iteration (replica-level accounting).
struct BatchRecord {
  ReplicaId replica = 0;
  Seconds start_time = 0.0;
  Seconds end_time = 0.0;
  TokenCount q_tokens = 0;
  int batch_size = 0;
  FlopCount flops = 0.0;
  ByteCount hbm_bytes_per_gpu = 0;  ///< HBM traffic per GPU (MBU accounting)
  double kv_utilization = 0.0;  ///< blocks in use / total, at submission
};

/// Static description of the cluster the collector accounts against.
/// Power draw follows a linear utilization model: a GPU running a batch at
/// intensity u (its FLOP or bandwidth utilization, whichever is higher)
/// draws idle + (peak - idle) * u watts; an idle GPU draws idle watts.
struct ClusterResources {
  int num_replicas = 1;
  int gpus_per_replica = 1;
  double peak_flops_per_gpu = 0.0;
  double hbm_bytes_per_sec_per_gpu = 0.0;
  double idle_watts_per_gpu = 0.0;
  double peak_watts_per_gpu = 0.0;  ///< 0 disables energy accounting
};

/// Per-pool resource rates for exact attribution: one entry per pool of a
/// heterogeneous (or single-pool elastic) deployment, in pool order. The
/// collector accumulates each pool's batches against its own SKU rates,
/// replacing the fleet-level slot-weighted approximation for the per-pool
/// breakout in PoolScalingReport.
struct PoolResources {
  std::string name;
  int gpus_per_replica = 1;
  double peak_flops_per_gpu = 0.0;
  double hbm_bytes_per_sec_per_gpu = 0.0;
  double idle_watts_per_gpu = 0.0;
  double peak_watts_per_gpu = 0.0;
};

/// Exact prefix-cache accounting aggregated across a run's replicas
/// (src/kvcache/). Conservation invariants: hits + misses == lookups, and
/// tokens_saved is exactly the prefill compute the schedulers skipped.
struct PrefixCacheMetrics {
  bool enabled = false;
  std::int64_t lookups = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t inserted_blocks = 0;
  std::int64_t evicted_blocks = 0;
  TokenCount tokens_saved = 0;       ///< prefill tokens served from cache
  double bytes_saved = 0.0;          ///< KV bytes not recomputed (replica-wide)
  std::int64_t resident_sessions = 0;  ///< sessions with resident KV at end

  double hit_rate() const {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }

  /// Per-tenant / per-pool slice of the cache traffic.
  struct Slice {
    std::string name;
    std::int64_t lookups = 0;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    TokenCount tokens_saved = 0;

    double hit_rate() const {
      return lookups == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(lookups);
    }
  };
  std::vector<Slice> by_tenant;  ///< sorted by tenant id
  std::vector<Slice> by_pool;    ///< pool order (pool deployments only)
};

/// Resilience accounting of a faulted run (src/fault/): what the injected
/// failures cost and how recovery answered. Conservation invariant over the
/// workload: arrived == completed + shed + lost (every arrival terminal in
/// exactly one bucket).
struct ResilienceMetrics {
  bool enabled = false;
  // Fault events injected.
  std::int64_t num_crashes = 0;
  std::int64_t num_spot_reclaims = 0;   ///< replicas reclaimed by spot windows
  std::int64_t num_degrade_events = 0;  ///< straggler episodes started
  // Recovery traffic.
  std::int64_t num_retries = 0;     ///< backoff-and-re-route events
  std::int64_t num_handoffs = 0;    ///< queued casualties re-routed at once
  std::int64_t num_shed = 0;        ///< requests dropped by the shed floor
  std::int64_t num_lost = 0;        ///< requests out of recovery attempts
  TokenCount tokens_reprefilled = 0;   ///< prefill work redone after failures
  TokenCount decode_tokens_discarded = 0;  ///< decode progress thrown away
  // Repair: capacity-hole close-out by the autoscaler.
  std::int64_t num_repairs = 0;  ///< replacement activations after kills
  Seconds mttr_s = 0.0;          ///< mean kill -> replacement-active time
  // SLO attainment, fault-blame split: `clean` counts only requests no
  // fault touched; `impacted` counts only touched ones (shed/lost = miss).
  // -1 when the slice is empty or no tenant carries an SLO.
  double slo_attainment_clean = -1.0;
  double slo_attainment_impacted = -1.0;
};

/// Aggregated output of one simulation.
struct SimulationMetrics {
  // Request-level.
  Summary scheduling_delay;
  Summary ttft;
  Summary tbt;
  Summary normalized_e2e_latency;
  Summary normalized_execution_latency;
  std::size_t num_requests = 0;
  std::size_t num_completed = 0;
  std::int64_t num_restarts = 0;
  /// Discrete events executed by the simulation (engine-throughput metric:
  /// events / wall-second is what the core-perf benchmarks track).
  std::uint64_t num_sim_events = 0;

  // Replica/cluster-level.
  Seconds makespan = 0.0;
  double throughput_qps = 0.0;     ///< completed requests / makespan
  double output_tokens_per_sec = 0.0;
  double mfu = 0.0;                ///< model FLOPs utilization
  double mbu = 0.0;                ///< model bandwidth utilization
  double mean_batch_size = 0.0;
  double mean_kv_utilization = 0.0;
  double busy_fraction = 0.0;      ///< replica busy time / makespan

  // Energy (zero when the cluster spec carries no power model).
  double total_energy_joules = 0.0;        ///< cluster GPU energy, whole run
  double energy_per_output_token = 0.0;    ///< joules per generated token
  double mean_cluster_power_watts = 0.0;   ///< total energy / makespan

  // Operator-level (paper §5.2; only filled when the simulation opts in via
  // SimulationConfig::collect_operator_metrics).
  struct OperatorStats {
    std::int64_t invocations = 0;  ///< stage executions including this op
    Seconds total_seconds = 0.0;   ///< summed per-stage time attribution
  };
  std::map<OpType, OperatorStats> operator_stats;

  // Per-tenant breakdown (only filled when the trace carries tenant tags or
  // tenant infos were registered; single-tenant runs leave it empty unless
  // infos were provided for tenant 0).
  struct TenantMetrics {
    TenantInfo info;
    std::size_t num_requests = 0;
    std::size_t num_completed = 0;
    Summary scheduling_delay;
    Summary ttft;
    Summary tbt;
    double throughput_qps = 0.0;
    double output_tokens_per_sec = 0.0;
    /// Fraction of this tenant's requests meeting their SLO (incomplete
    /// requests count as misses). -1 when the tenant carries no SLO.
    double slo_attainment = -1.0;
  };
  std::vector<TenantMetrics> tenant_metrics;  ///< sorted by tenant id

  /// Replica-count and GPU-hour/cost accounting of the run's fleet. Filled
  /// by the simulator: a flat fixed-fleet report normally, the full scaling
  /// timeline when an autoscaler managed the replicas (src/cluster/).
  ClusterScalingReport scaling;

  /// Final observability-registry state: every counter/gauge/histogram the
  /// simulator, schedulers and cluster manager maintained during the run
  /// (src/obs/registry.h). Always filled by the simulator.
  RegistrySnapshot registry;

  /// Rolling windowed metric tracks ("cluster", "tenant:<name>",
  /// "pool:<name>"); empty unless the simulation enabled a rolling window
  /// (SimObs::rolling_window_s > 0).
  std::vector<RollingTrack> rolling;

  /// Estimator prediction-cache traffic attributable to this run (filled by
  /// VidurSession::simulate; zero for reference replays, which bypass the
  /// estimator). Deltas of the estimators' relaxed atomic counters — exact
  /// for serial runs, approximate when sweeps share estimators across
  /// threads.
  std::int64_t estimator_cache_hits = 0;
  std::int64_t estimator_cache_misses = 0;

  /// Prefix-cache traffic (KV reuse); enabled=false when the deployment
  /// ran without a prefix cache.
  PrefixCacheMetrics prefix_cache;

  /// Fault-injection and recovery accounting; enabled=false when the
  /// deployment ran without a faults block.
  ResilienceMetrics resilience;

  /// Cluster-wide SLO attainment: the fraction of all requests (across
  /// every SLO-carrying tenant, weighted by traffic) that met their
  /// tenant's SLO. -1 when no tenant carries an SLO.
  double aggregate_slo_attainment() const;

  /// Rendered operator time table, heaviest first (empty when no operator
  /// metrics were collected).
  std::string operator_table() const;

  /// Rendered per-tenant breakdown table (empty when single-tenant).
  std::string tenant_table() const;

  std::string to_string() const;
};

/// Collects raw samples during a run and aggregates them at the end.
class MetricsCollector {
 public:
  explicit MetricsCollector(ClusterResources cluster);
  /// Convenience overload used widely by tests; no power model.
  MetricsCollector(int num_replicas, double peak_flops_per_gpu,
                   int gpus_per_replica,
                   double hbm_bytes_per_sec_per_gpu = 0.0);

  /// Register tenant identities for per-tenant attribution. Records tagged
  /// with an unregistered tenant id still get a breakdown row under a
  /// generated name. May be called at any time before finalize().
  void set_tenants(std::vector<TenantInfo> tenants);

  /// Enable exact per-pool attribution: `pools` carries each pool's own SKU
  /// rates (in pool order, matching the scaling report's pool order) and
  /// `pool_of_slot` maps every replica slot to its pool index. Batches are
  /// then additionally accumulated per pool, and finalize() fills the
  /// mfu/mbu/busy_fraction/energy_joules fields of each PoolScalingReport
  /// from those exact sums. Call before the first record_batch().
  void set_pools(std::vector<PoolResources> pools,
                 std::vector<int> pool_of_slot);

  void record_batch(const BatchRecord& record);
  void record_request(const RequestRecord& record);
  /// Accumulate one stage execution's per-operator time attribution.
  void record_operators(const std::map<OpType, Seconds>& per_op);

  /// Aggregate. `now` is the simulation end time (makespan). The overload
  /// taking the fleet's scaling report attaches it to the result and bills
  /// idle energy from the fleet's actual paid GPU-time — an autoscaled run
  /// pays idle watts only while a replica is up (provisioning through
  /// decommission), not for the whole static slot ceiling. The one-argument
  /// form assumes a fixed fleet of `num_replicas` active the whole run.
  SimulationMetrics finalize(Seconds now) const;
  SimulationMetrics finalize(Seconds now,
                             const ClusterScalingReport& scaling) const;

  const std::vector<RequestRecord>& request_records() const {
    return requests_;
  }

 private:
  /// Streaming per-pool accumulators (exact attribution).
  struct PoolAcc {
    double flops = 0.0;
    double hbm_bytes = 0.0;
    double busy_time = 0.0;
    double busy_energy_joules = 0.0;
  };

  ClusterResources cluster_;
  std::vector<TenantInfo> tenants_;
  std::vector<RequestRecord> requests_;
  std::vector<PoolResources> pools_;
  std::vector<int> pool_of_slot_;
  std::vector<PoolAcc> pool_accs_;
  // Streaming replica-level accumulators (batch records are not retained).
  double total_flops_ = 0.0;
  double total_hbm_bytes_ = 0.0;
  double total_busy_time_ = 0.0;
  double weighted_kv_util_ = 0.0;
  double weighted_batch_size_ = 0.0;
  double busy_energy_joules_ = 0.0;
  std::int64_t total_batches_ = 0;
  TokenCount total_q_tokens_ = 0;
  std::map<OpType, SimulationMetrics::OperatorStats> operator_stats_;
};

}  // namespace vidur
