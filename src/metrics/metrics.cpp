#include "metrics/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/table.h"

namespace vidur {

MetricsCollector::MetricsCollector(ClusterResources cluster)
    : cluster_(cluster) {
  VIDUR_CHECK(cluster_.num_replicas >= 1);
  VIDUR_CHECK(cluster_.peak_flops_per_gpu > 0);
  VIDUR_CHECK(cluster_.gpus_per_replica >= 1);
  VIDUR_CHECK(cluster_.hbm_bytes_per_sec_per_gpu >= 0);
  VIDUR_CHECK(cluster_.idle_watts_per_gpu >= 0);
  VIDUR_CHECK(cluster_.peak_watts_per_gpu >= cluster_.idle_watts_per_gpu);
}

MetricsCollector::MetricsCollector(int num_replicas,
                                   double peak_flops_per_gpu,
                                   int gpus_per_replica,
                                   double hbm_bytes_per_sec_per_gpu)
    : MetricsCollector(ClusterResources{
          .num_replicas = num_replicas,
          .gpus_per_replica = gpus_per_replica,
          .peak_flops_per_gpu = peak_flops_per_gpu,
          .hbm_bytes_per_sec_per_gpu = hbm_bytes_per_sec_per_gpu}) {}

void MetricsCollector::set_pools(std::vector<PoolResources> pools,
                                 std::vector<int> pool_of_slot) {
  for (const int p : pool_of_slot)
    VIDUR_CHECK_MSG(p >= 0 && p < static_cast<int>(pools.size()),
                    "pool_of_slot entry " << p << " out of range");
  for (const PoolResources& p : pools) {
    VIDUR_CHECK(p.gpus_per_replica >= 1);
    VIDUR_CHECK(p.peak_flops_per_gpu > 0);
  }
  pools_ = std::move(pools);
  pool_of_slot_ = std::move(pool_of_slot);
  pool_accs_.assign(pools_.size(), PoolAcc{});
}

namespace {

/// Linear power model shared by the fleet-average and per-pool paths:
/// intensity is the batch's per-GPU FLOP or bandwidth utilization,
/// whichever dominates (roofline-style).
double batch_energy_joules(const BatchRecord& record, double duration,
                           int gpus_per_replica, double peak_flops_per_gpu,
                           double hbm_bytes_per_sec_per_gpu,
                           double idle_watts_per_gpu,
                           double peak_watts_per_gpu) {
  if (peak_watts_per_gpu <= 0 || duration <= 0) return 0.0;
  const double flop_util =
      record.flops / (duration * peak_flops_per_gpu * gpus_per_replica);
  const double bw_util =
      hbm_bytes_per_sec_per_gpu > 0
          ? static_cast<double>(record.hbm_bytes_per_gpu) /
                (duration * hbm_bytes_per_sec_per_gpu)
          : 0.0;
  const double intensity = std::clamp(std::max(flop_util, bw_util), 0.0, 1.0);
  const double watts_per_gpu =
      idle_watts_per_gpu + (peak_watts_per_gpu - idle_watts_per_gpu) *
                               intensity;
  return duration * gpus_per_replica * watts_per_gpu;
}

}  // namespace

void MetricsCollector::record_batch(const BatchRecord& record) {
  const double duration = record.end_time - record.start_time;
  VIDUR_CHECK(duration >= 0);
  total_flops_ += record.flops;
  total_hbm_bytes_ += static_cast<double>(record.hbm_bytes_per_gpu);
  total_busy_time_ += duration;
  weighted_kv_util_ += record.kv_utilization * duration;
  weighted_batch_size_ += static_cast<double>(record.batch_size) * duration;
  total_q_tokens_ += record.q_tokens;
  ++total_batches_;

  // Fleet-average energy against the (possibly slot-weighted) cluster
  // rates — kept as-is so homogeneous runs and the existing fleet metrics
  // are unchanged by per-pool attribution.
  busy_energy_joules_ += batch_energy_joules(
      record, duration, cluster_.gpus_per_replica,
      cluster_.peak_flops_per_gpu, cluster_.hbm_bytes_per_sec_per_gpu,
      cluster_.idle_watts_per_gpu, cluster_.peak_watts_per_gpu);

  // Exact per-pool attribution: the same batch accumulated against its own
  // pool's SKU rates.
  if (!pools_.empty()) {
    const auto slot = static_cast<std::size_t>(record.replica);
    VIDUR_CHECK_MSG(slot < pool_of_slot_.size(),
                    "batch replica " << record.replica
                                     << " outside the pool slot layout");
    const auto pool = static_cast<std::size_t>(pool_of_slot_[slot]);
    const PoolResources& res = pools_[pool];
    PoolAcc& acc = pool_accs_[pool];
    acc.flops += record.flops;
    acc.hbm_bytes += static_cast<double>(record.hbm_bytes_per_gpu);
    acc.busy_time += duration;
    acc.busy_energy_joules += batch_energy_joules(
        record, duration, res.gpus_per_replica, res.peak_flops_per_gpu,
        res.hbm_bytes_per_sec_per_gpu, res.idle_watts_per_gpu,
        res.peak_watts_per_gpu);
  }
}

void MetricsCollector::set_tenants(std::vector<TenantInfo> tenants) {
  for (const TenantInfo& t : tenants) VIDUR_CHECK(t.id >= 0);
  tenants_ = std::move(tenants);
}

void MetricsCollector::record_request(const RequestRecord& record) {
  requests_.push_back(record);
}

namespace {

/// Worst inter-token gap of one request (0 when fewer than two tokens).
Seconds max_tbt(const RequestRecord& r) {
  Seconds worst = 0.0;
  for (std::size_t i = 1; i < r.token_times.size(); ++i)
    worst = std::max(worst, r.token_times[i] - r.token_times[i - 1]);
  return worst;
}

bool meets_slo(const RequestRecord& r, const SloSpec& slo) {
  if (!r.completed()) return false;
  if (slo.ttft_target > 0 && r.ttft() > slo.ttft_target) return false;
  if (slo.tbt_target > 0 && max_tbt(r) > slo.tbt_target) return false;
  return true;
}

}  // namespace

void MetricsCollector::record_operators(
    const std::map<OpType, Seconds>& per_op) {
  for (const auto& [op, seconds] : per_op) {
    auto& stats = operator_stats_[op];
    ++stats.invocations;
    stats.total_seconds += seconds;
  }
}

SimulationMetrics MetricsCollector::finalize(Seconds now) const {
  return finalize(now, static_fleet_report(cluster_.num_replicas, now,
                                           cluster_.gpus_per_replica,
                                           /*cost_per_gpu_hour=*/0.0));
}

SimulationMetrics MetricsCollector::finalize(
    Seconds now, const ClusterScalingReport& scaling) const {
  SimulationMetrics m;
  m.scaling = scaling;
  m.num_requests = requests_.size();
  m.makespan = now;

  SampleSeries delay, ttft, tbt, norm_e2e, norm_exec;
  TokenCount output_tokens = 0;
  for (const auto& r : requests_) {
    if (!r.completed()) continue;
    ++m.num_completed;
    m.num_restarts += r.num_restarts;
    delay.add(r.scheduling_delay());
    ttft.add(r.ttft());
    norm_e2e.add(r.normalized_e2e_latency());
    norm_exec.add(r.normalized_execution_latency());
    output_tokens += r.decode_tokens;
    for (std::size_t i = 1; i < r.token_times.size(); ++i)
      tbt.add(r.token_times[i] - r.token_times[i - 1]);
  }
  m.scheduling_delay = Summary::of(delay);
  m.ttft = Summary::of(ttft);
  m.tbt = Summary::of(tbt);
  m.normalized_e2e_latency = Summary::of(norm_e2e);
  m.normalized_execution_latency = Summary::of(norm_exec);

  if (now > 0) {
    m.throughput_qps = static_cast<double>(m.num_completed) / now;
    m.output_tokens_per_sec = static_cast<double>(output_tokens) / now;
    const double cluster_flops = cluster_.peak_flops_per_gpu *
                                 cluster_.gpus_per_replica *
                                 cluster_.num_replicas;
    m.mfu = total_flops_ / (now * cluster_flops);
    // hbm bytes are recorded per GPU, and each replica's GPUs move them in
    // parallel, so normalize by replica count only.
    if (cluster_.hbm_bytes_per_sec_per_gpu > 0)
      m.mbu = total_hbm_bytes_ /
              (now * cluster_.num_replicas * cluster_.hbm_bytes_per_sec_per_gpu);
    m.busy_fraction = total_busy_time_ / (now * cluster_.num_replicas);

    if (cluster_.peak_watts_per_gpu > 0) {
      // Idle draw is billed against the fleet's paid GPU-time (the scaling
      // report's replica timeline), not the static slot ceiling: a replica
      // slot that was never provisioned draws nothing, and a decommissioned
      // one stops drawing at release.
      const double paid_gpu_seconds = scaling.gpu_hours * 3600.0;
      const double idle_gpu_seconds = std::max(
          0.0, paid_gpu_seconds - total_busy_time_ * cluster_.gpus_per_replica);
      m.total_energy_joules =
          busy_energy_joules_ + idle_gpu_seconds * cluster_.idle_watts_per_gpu;
      if (output_tokens > 0)
        m.energy_per_output_token =
            m.total_energy_joules / static_cast<double>(output_tokens);
      m.mean_cluster_power_watts = m.total_energy_joules / now;
    }
  }
  if (total_busy_time_ > 0) {
    m.mean_kv_utilization = weighted_kv_util_ / total_busy_time_;
    m.mean_batch_size = weighted_batch_size_ / total_busy_time_;
  }
  m.operator_stats = operator_stats_;

  // Exact per-pool MFU/MBU/energy: each pool's own batch sums over the
  // pool's own SKU rates and *paid* GPU-time (its scaling-report hours).
  if (!pools_.empty() && m.scaling.pools.size() == pools_.size()) {
    for (std::size_t i = 0; i < pools_.size(); ++i) {
      const PoolResources& res = pools_[i];
      const PoolAcc& acc = pool_accs_[i];
      PoolScalingReport& p = m.scaling.pools[i];
      const double paid_replica_seconds = p.replica_hours * 3600.0;
      const double paid_gpu_seconds = p.gpu_hours * 3600.0;
      if (paid_gpu_seconds > 0)
        p.mfu = acc.flops / (paid_gpu_seconds * res.peak_flops_per_gpu);
      // hbm bytes are per GPU and a replica's GPUs move them in parallel,
      // so normalize by paid replica-time (mirrors the fleet MBU).
      if (paid_replica_seconds > 0) {
        if (res.hbm_bytes_per_sec_per_gpu > 0)
          p.mbu = acc.hbm_bytes /
                  (paid_replica_seconds * res.hbm_bytes_per_sec_per_gpu);
        p.busy_fraction = acc.busy_time / paid_replica_seconds;
      }
      if (res.peak_watts_per_gpu > 0) {
        const double idle_gpu_seconds = std::max(
            0.0, paid_gpu_seconds - acc.busy_time * res.gpus_per_replica);
        p.energy_joules = acc.busy_energy_joules +
                          idle_gpu_seconds * res.idle_watts_per_gpu;
      }
    }
  }

  // ---- per-tenant breakdown ----
  bool tagged = !tenants_.empty();
  for (const auto& r : requests_) tagged = tagged || r.tenant != 0;
  if (tagged) {
    struct TenantAcc {
      SampleSeries delay, ttft, tbt;
      std::size_t num_requests = 0, num_completed = 0, num_slo_met = 0;
      TokenCount output_tokens = 0;
    };
    std::map<TenantId, TenantAcc> accs;
    std::map<TenantId, const TenantInfo*> infos;
    for (const TenantInfo& t : tenants_) {
      infos[t.id] = &t;
      accs[t.id];  // SLO-carrying tenants get a row even with no traffic
    }
    for (const auto& r : requests_) {
      TenantAcc& acc = accs[r.tenant];
      ++acc.num_requests;
      const auto it = infos.find(r.tenant);
      const SloSpec* slo = it != infos.end() ? &it->second->slo : nullptr;
      if (slo != nullptr && slo->enabled() && meets_slo(r, *slo))
        ++acc.num_slo_met;
      if (!r.completed()) continue;
      ++acc.num_completed;
      acc.delay.add(r.scheduling_delay());
      acc.ttft.add(r.ttft());
      acc.output_tokens += r.decode_tokens;
      for (std::size_t i = 1; i < r.token_times.size(); ++i)
        acc.tbt.add(r.token_times[i] - r.token_times[i - 1]);
    }
    for (const auto& [id, acc] : accs) {
      SimulationMetrics::TenantMetrics tm;
      const auto it = infos.find(id);
      if (it != infos.end()) {
        tm.info = *it->second;
      } else {
        tm.info.id = id;
        tm.info.name = "tenant" + std::to_string(id);
      }
      tm.num_requests = acc.num_requests;
      tm.num_completed = acc.num_completed;
      tm.scheduling_delay = Summary::of(acc.delay);
      tm.ttft = Summary::of(acc.ttft);
      tm.tbt = Summary::of(acc.tbt);
      if (now > 0) {
        tm.throughput_qps = static_cast<double>(acc.num_completed) / now;
        tm.output_tokens_per_sec =
            static_cast<double>(acc.output_tokens) / now;
      }
      if (tm.info.slo.enabled() && acc.num_requests > 0)
        tm.slo_attainment = static_cast<double>(acc.num_slo_met) /
                            static_cast<double>(acc.num_requests);
      m.tenant_metrics.push_back(std::move(tm));
    }
  }
  return m;
}

double SimulationMetrics::aggregate_slo_attainment() const {
  double met = 0.0;
  std::size_t requests = 0;
  for (const auto& t : tenant_metrics) {
    if (t.slo_attainment < 0) continue;
    met += t.slo_attainment * static_cast<double>(t.num_requests);
    requests += t.num_requests;
  }
  return requests > 0 ? met / static_cast<double>(requests) : -1.0;
}

std::string SimulationMetrics::tenant_table() const {
  if (tenant_metrics.empty()) return {};
  ConsoleTable table({"tenant", "prio", "requests", "completed", "TTFT p90",
                      "TBT p99", "tok/s", "SLO attainment"});
  for (const auto& t : tenant_metrics) {
    table.add_row({t.info.name, std::to_string(t.info.priority),
                   std::to_string(t.num_requests),
                   std::to_string(t.num_completed),
                   fmt_double(t.ttft.p90, 4) + "s",
                   fmt_double(t.tbt.p99, 5) + "s",
                   fmt_double(t.output_tokens_per_sec, 1),
                   t.slo_attainment < 0 ? std::string("-")
                                        : fmt_percent(t.slo_attainment)});
  }
  return table.str();
}

std::string SimulationMetrics::operator_table() const {
  if (operator_stats.empty()) return {};
  Seconds grand_total = 0.0;
  for (const auto& [op, stats] : operator_stats)
    grand_total += stats.total_seconds;

  std::vector<std::pair<OpType, OperatorStats>> rows(operator_stats.begin(),
                                                     operator_stats.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_seconds > b.second.total_seconds;
  });

  ConsoleTable table(
      {"operator", "class", "stage execs", "total time (s)", "share"});
  for (const auto& [op, stats] : rows) {
    const char* cls = op_class(op) == OpClass::kTokenLevel      ? "token"
                      : op_class(op) == OpClass::kSequenceLevel ? "sequence"
                                                                : "comm";
    table.add_row({op_name(op), cls, std::to_string(stats.invocations),
                   fmt_double(stats.total_seconds, 4),
                   fmt_percent(grand_total > 0
                                   ? stats.total_seconds / grand_total
                                   : 0.0)});
  }
  return table.str();
}

std::string SimulationMetrics::to_string() const {
  std::ostringstream os;
  os << "requests: " << num_completed << "/" << num_requests
     << " completed, makespan " << fmt_double(makespan, 2) << "s\n";
  os << "  throughput:      " << fmt_double(throughput_qps, 3) << " qps, "
     << fmt_double(output_tokens_per_sec, 1) << " output tok/s\n";
  os << "  sched delay:     p50 " << fmt_double(scheduling_delay.p50, 4)
     << "s  p99 " << fmt_double(scheduling_delay.p99, 4) << "s\n";
  os << "  TTFT:            p50 " << fmt_double(ttft.p50, 4) << "s  p90 "
     << fmt_double(ttft.p90, 4) << "s\n";
  os << "  TBT:             p50 " << fmt_double(tbt.p50, 5) << "s  p99 "
     << fmt_double(tbt.p99, 5) << "s\n";
  os << "  norm e2e:        p50 " << fmt_double(normalized_e2e_latency.p50, 5)
     << "  p95 " << fmt_double(normalized_e2e_latency.p95, 5)
     << " s/token\n";
  os << "  norm exec:       p50 "
     << fmt_double(normalized_execution_latency.p50, 5) << "  p95 "
     << fmt_double(normalized_execution_latency.p95, 5) << " s/token\n";
  os << "  MFU: " << fmt_percent(mfu) << "  MBU: " << fmt_percent(mbu)
     << "  mean batch "
     << fmt_double(mean_batch_size, 1) << "  KV util "
     << fmt_percent(mean_kv_utilization) << "  busy "
     << fmt_percent(busy_fraction) << "  restarts " << num_restarts << "\n";
  if (total_energy_joules > 0) {
    os << "  energy:          " << fmt_double(total_energy_joules / 1e3, 1)
       << " kJ total, " << fmt_double(energy_per_output_token, 2)
       << " J/token, mean draw "
       << fmt_double(mean_cluster_power_watts, 0) << " W\n";
  }
  if (estimator_cache_hits + estimator_cache_misses > 0) {
    const double total =
        static_cast<double>(estimator_cache_hits + estimator_cache_misses);
    os << "  estimator cache: " << estimator_cache_hits << " hits / "
       << estimator_cache_misses << " misses ("
       << fmt_percent(static_cast<double>(estimator_cache_hits) / total)
       << " hit rate)\n";
  }
  if (scaling.enabled) os << "  fleet:           " << scaling.to_string()
                          << "\n";
  if (!tenant_metrics.empty()) os << tenant_table();
  return os.str();
}

}  // namespace vidur
