#include "metrics/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/table.h"

namespace vidur {

MetricsCollector::MetricsCollector(ClusterResources cluster)
    : cluster_(cluster) {
  VIDUR_CHECK(cluster_.num_replicas >= 1);
  VIDUR_CHECK(cluster_.peak_flops_per_gpu > 0);
  VIDUR_CHECK(cluster_.gpus_per_replica >= 1);
  VIDUR_CHECK(cluster_.hbm_bytes_per_sec_per_gpu >= 0);
  VIDUR_CHECK(cluster_.idle_watts_per_gpu >= 0);
  VIDUR_CHECK(cluster_.peak_watts_per_gpu >= cluster_.idle_watts_per_gpu);
}

MetricsCollector::MetricsCollector(int num_replicas,
                                   double peak_flops_per_gpu,
                                   int gpus_per_replica,
                                   double hbm_bytes_per_sec_per_gpu)
    : MetricsCollector(ClusterResources{
          .num_replicas = num_replicas,
          .gpus_per_replica = gpus_per_replica,
          .peak_flops_per_gpu = peak_flops_per_gpu,
          .hbm_bytes_per_sec_per_gpu = hbm_bytes_per_sec_per_gpu}) {}

void MetricsCollector::record_batch(const BatchRecord& record) {
  const double duration = record.end_time - record.start_time;
  VIDUR_CHECK(duration >= 0);
  total_flops_ += record.flops;
  total_hbm_bytes_ += static_cast<double>(record.hbm_bytes_per_gpu);
  total_busy_time_ += duration;
  weighted_kv_util_ += record.kv_utilization * duration;
  weighted_batch_size_ += static_cast<double>(record.batch_size) * duration;
  total_q_tokens_ += record.q_tokens;
  ++total_batches_;

  if (cluster_.peak_watts_per_gpu > 0 && duration > 0) {
    // Linear power model: intensity is the batch's per-GPU FLOP or bandwidth
    // utilization, whichever dominates (roofline-style).
    const double flop_util =
        record.flops / (duration * cluster_.peak_flops_per_gpu *
                        cluster_.gpus_per_replica);
    const double bw_util =
        cluster_.hbm_bytes_per_sec_per_gpu > 0
            ? static_cast<double>(record.hbm_bytes_per_gpu) /
                  (duration * cluster_.hbm_bytes_per_sec_per_gpu)
            : 0.0;
    const double intensity = std::clamp(std::max(flop_util, bw_util), 0.0, 1.0);
    const double watts_per_gpu =
        cluster_.idle_watts_per_gpu +
        (cluster_.peak_watts_per_gpu - cluster_.idle_watts_per_gpu) * intensity;
    busy_energy_joules_ += duration * cluster_.gpus_per_replica * watts_per_gpu;
  }
}

void MetricsCollector::set_tenants(std::vector<TenantInfo> tenants) {
  for (const TenantInfo& t : tenants) VIDUR_CHECK(t.id >= 0);
  tenants_ = std::move(tenants);
}

void MetricsCollector::record_request(const RequestRecord& record) {
  requests_.push_back(record);
}

namespace {

/// Worst inter-token gap of one request (0 when fewer than two tokens).
Seconds max_tbt(const RequestRecord& r) {
  Seconds worst = 0.0;
  for (std::size_t i = 1; i < r.token_times.size(); ++i)
    worst = std::max(worst, r.token_times[i] - r.token_times[i - 1]);
  return worst;
}

bool meets_slo(const RequestRecord& r, const SloSpec& slo) {
  if (!r.completed()) return false;
  if (slo.ttft_target > 0 && r.ttft() > slo.ttft_target) return false;
  if (slo.tbt_target > 0 && max_tbt(r) > slo.tbt_target) return false;
  return true;
}

}  // namespace

void MetricsCollector::record_operators(
    const std::map<OpType, Seconds>& per_op) {
  for (const auto& [op, seconds] : per_op) {
    auto& stats = operator_stats_[op];
    ++stats.invocations;
    stats.total_seconds += seconds;
  }
}

SimulationMetrics MetricsCollector::finalize(Seconds now) const {
  return finalize(now, static_fleet_report(cluster_.num_replicas, now,
                                           cluster_.gpus_per_replica,
                                           /*cost_per_gpu_hour=*/0.0));
}

SimulationMetrics MetricsCollector::finalize(
    Seconds now, const ClusterScalingReport& scaling) const {
  SimulationMetrics m;
  m.scaling = scaling;
  m.num_requests = requests_.size();
  m.makespan = now;

  SampleSeries delay, ttft, tbt, norm_e2e, norm_exec;
  TokenCount output_tokens = 0;
  for (const auto& r : requests_) {
    if (!r.completed()) continue;
    ++m.num_completed;
    m.num_restarts += r.num_restarts;
    delay.add(r.scheduling_delay());
    ttft.add(r.ttft());
    norm_e2e.add(r.normalized_e2e_latency());
    norm_exec.add(r.normalized_execution_latency());
    output_tokens += r.decode_tokens;
    for (std::size_t i = 1; i < r.token_times.size(); ++i)
      tbt.add(r.token_times[i] - r.token_times[i - 1]);
  }
  m.scheduling_delay = Summary::of(delay);
  m.ttft = Summary::of(ttft);
  m.tbt = Summary::of(tbt);
  m.normalized_e2e_latency = Summary::of(norm_e2e);
  m.normalized_execution_latency = Summary::of(norm_exec);

  if (now > 0) {
    m.throughput_qps = static_cast<double>(m.num_completed) / now;
    m.output_tokens_per_sec = static_cast<double>(output_tokens) / now;
    const double cluster_flops = cluster_.peak_flops_per_gpu *
                                 cluster_.gpus_per_replica *
                                 cluster_.num_replicas;
    m.mfu = total_flops_ / (now * cluster_flops);
    // hbm bytes are recorded per GPU, and each replica's GPUs move them in
    // parallel, so normalize by replica count only.
    if (cluster_.hbm_bytes_per_sec_per_gpu > 0)
      m.mbu = total_hbm_bytes_ /
              (now * cluster_.num_replicas * cluster_.hbm_bytes_per_sec_per_gpu);
    m.busy_fraction = total_busy_time_ / (now * cluster_.num_replicas);

    if (cluster_.peak_watts_per_gpu > 0) {
      // Idle draw is billed against the fleet's paid GPU-time (the scaling
      // report's replica timeline), not the static slot ceiling: a replica
      // slot that was never provisioned draws nothing, and a decommissioned
      // one stops drawing at release.
      const double paid_gpu_seconds = scaling.gpu_hours * 3600.0;
      const double idle_gpu_seconds = std::max(
          0.0, paid_gpu_seconds - total_busy_time_ * cluster_.gpus_per_replica);
      m.total_energy_joules =
          busy_energy_joules_ + idle_gpu_seconds * cluster_.idle_watts_per_gpu;
      if (output_tokens > 0)
        m.energy_per_output_token =
            m.total_energy_joules / static_cast<double>(output_tokens);
      m.mean_cluster_power_watts = m.total_energy_joules / now;
    }
  }
  if (total_busy_time_ > 0) {
    m.mean_kv_utilization = weighted_kv_util_ / total_busy_time_;
    m.mean_batch_size = weighted_batch_size_ / total_busy_time_;
  }
  m.operator_stats = operator_stats_;

  // ---- per-tenant breakdown ----
  bool tagged = !tenants_.empty();
  for (const auto& r : requests_) tagged = tagged || r.tenant != 0;
  if (tagged) {
    struct TenantAcc {
      SampleSeries delay, ttft, tbt;
      std::size_t num_requests = 0, num_completed = 0, num_slo_met = 0;
      TokenCount output_tokens = 0;
    };
    std::map<TenantId, TenantAcc> accs;
    std::map<TenantId, const TenantInfo*> infos;
    for (const TenantInfo& t : tenants_) {
      infos[t.id] = &t;
      accs[t.id];  // SLO-carrying tenants get a row even with no traffic
    }
    for (const auto& r : requests_) {
      TenantAcc& acc = accs[r.tenant];
      ++acc.num_requests;
      const auto it = infos.find(r.tenant);
      const SloSpec* slo = it != infos.end() ? &it->second->slo : nullptr;
      if (slo != nullptr && slo->enabled() && meets_slo(r, *slo))
        ++acc.num_slo_met;
      if (!r.completed()) continue;
      ++acc.num_completed;
      acc.delay.add(r.scheduling_delay());
      acc.ttft.add(r.ttft());
      acc.output_tokens += r.decode_tokens;
      for (std::size_t i = 1; i < r.token_times.size(); ++i)
        acc.tbt.add(r.token_times[i] - r.token_times[i - 1]);
    }
    for (const auto& [id, acc] : accs) {
      SimulationMetrics::TenantMetrics tm;
      const auto it = infos.find(id);
      if (it != infos.end()) {
        tm.info = *it->second;
      } else {
        tm.info.id = id;
        tm.info.name = "tenant" + std::to_string(id);
      }
      tm.num_requests = acc.num_requests;
      tm.num_completed = acc.num_completed;
      tm.scheduling_delay = Summary::of(acc.delay);
      tm.ttft = Summary::of(acc.ttft);
      tm.tbt = Summary::of(acc.tbt);
      if (now > 0) {
        tm.throughput_qps = static_cast<double>(acc.num_completed) / now;
        tm.output_tokens_per_sec =
            static_cast<double>(acc.output_tokens) / now;
      }
      if (tm.info.slo.enabled() && acc.num_requests > 0)
        tm.slo_attainment = static_cast<double>(acc.num_slo_met) /
                            static_cast<double>(acc.num_requests);
      m.tenant_metrics.push_back(std::move(tm));
    }
  }
  return m;
}

double SimulationMetrics::aggregate_slo_attainment() const {
  double met = 0.0;
  std::size_t requests = 0;
  for (const auto& t : tenant_metrics) {
    if (t.slo_attainment < 0) continue;
    met += t.slo_attainment * static_cast<double>(t.num_requests);
    requests += t.num_requests;
  }
  return requests > 0 ? met / static_cast<double>(requests) : -1.0;
}

std::string SimulationMetrics::tenant_table() const {
  if (tenant_metrics.empty()) return {};
  ConsoleTable table({"tenant", "prio", "requests", "completed", "TTFT p90",
                      "TBT p99", "tok/s", "SLO attainment"});
  for (const auto& t : tenant_metrics) {
    table.add_row({t.info.name, std::to_string(t.info.priority),
                   std::to_string(t.num_requests),
                   std::to_string(t.num_completed),
                   fmt_double(t.ttft.p90, 4) + "s",
                   fmt_double(t.tbt.p99, 5) + "s",
                   fmt_double(t.output_tokens_per_sec, 1),
                   t.slo_attainment < 0 ? std::string("-")
                                        : fmt_percent(t.slo_attainment)});
  }
  return table.str();
}

std::string SimulationMetrics::operator_table() const {
  if (operator_stats.empty()) return {};
  Seconds grand_total = 0.0;
  for (const auto& [op, stats] : operator_stats)
    grand_total += stats.total_seconds;

  std::vector<std::pair<OpType, OperatorStats>> rows(operator_stats.begin(),
                                                     operator_stats.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_seconds > b.second.total_seconds;
  });

  ConsoleTable table(
      {"operator", "class", "stage execs", "total time (s)", "share"});
  for (const auto& [op, stats] : rows) {
    const char* cls = op_class(op) == OpClass::kTokenLevel      ? "token"
                      : op_class(op) == OpClass::kSequenceLevel ? "sequence"
                                                                : "comm";
    table.add_row({op_name(op), cls, std::to_string(stats.invocations),
                   fmt_double(stats.total_seconds, 4),
                   fmt_percent(grand_total > 0
                                   ? stats.total_seconds / grand_total
                                   : 0.0)});
  }
  return table.str();
}

std::string SimulationMetrics::to_string() const {
  std::ostringstream os;
  os << "requests: " << num_completed << "/" << num_requests
     << " completed, makespan " << fmt_double(makespan, 2) << "s\n";
  os << "  throughput:      " << fmt_double(throughput_qps, 3) << " qps, "
     << fmt_double(output_tokens_per_sec, 1) << " output tok/s\n";
  os << "  sched delay:     p50 " << fmt_double(scheduling_delay.p50, 4)
     << "s  p99 " << fmt_double(scheduling_delay.p99, 4) << "s\n";
  os << "  TTFT:            p50 " << fmt_double(ttft.p50, 4) << "s  p90 "
     << fmt_double(ttft.p90, 4) << "s\n";
  os << "  TBT:             p50 " << fmt_double(tbt.p50, 5) << "s  p99 "
     << fmt_double(tbt.p99, 5) << "s\n";
  os << "  norm e2e:        p50 " << fmt_double(normalized_e2e_latency.p50, 5)
     << "  p95 " << fmt_double(normalized_e2e_latency.p95, 5)
     << " s/token\n";
  os << "  norm exec:       p50 "
     << fmt_double(normalized_execution_latency.p50, 5) << "  p95 "
     << fmt_double(normalized_execution_latency.p95, 5) << " s/token\n";
  os << "  MFU: " << fmt_percent(mfu) << "  MBU: " << fmt_percent(mbu)
     << "  mean batch "
     << fmt_double(mean_batch_size, 1) << "  KV util "
     << fmt_percent(mean_kv_utilization) << "  busy "
     << fmt_percent(busy_fraction) << "  restarts " << num_restarts << "\n";
  if (total_energy_joules > 0) {
    os << "  energy:          " << fmt_double(total_energy_joules / 1e3, 1)
       << " kJ total, " << fmt_double(energy_per_output_token, 2)
       << " J/token, mean draw "
       << fmt_double(mean_cluster_power_watts, 0) << " W\n";
  }
  if (scaling.enabled) os << "  fleet:           " << scaling.to_string()
                          << "\n";
  if (!tenant_metrics.empty()) os << tenant_table();
  return os.str();
}

}  // namespace vidur
