// Profile database: the set of (operator, input-size) -> measured-runtime
// points collected by the profiler. This is the C++ analogue of Vidur's
// published per-SKU profiling data; it round-trips through CSV so profiles
// can be shipped, inspected, and reloaded without re-profiling.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "operators/op_type.h"

namespace vidur {

/// Identifies one profiled operator variant: the op plus its sharding degree
/// (tensor-parallel degree for model ops, world size for collectives).
struct ProfileKey {
  OpType op;
  int shard = 1;

  auto operator<=>(const ProfileKey&) const = default;
};

/// One measurement: input-size features (see OpInput::features) and the
/// measured runtime in seconds (median over the profiler's repeat samples).
struct ProfilePoint {
  std::vector<double> features;
  double runtime = 0.0;
};

class ProfileDb {
 public:
  ProfileDb() = default;
  ProfileDb(std::string model_name, std::string sku_name)
      : model_name_(std::move(model_name)), sku_name_(std::move(sku_name)) {}

  const std::string& model_name() const { return model_name_; }
  const std::string& sku_name() const { return sku_name_; }

  void add(const ProfileKey& key, ProfilePoint point);

  /// Measurements for a key; throws vidur::Error when the key was never
  /// profiled (a model-onboarding bug).
  const std::vector<ProfilePoint>& points(const ProfileKey& key) const;

  bool contains(const ProfileKey& key) const;
  std::vector<ProfileKey> keys() const;
  std::size_t total_points() const;

  /// CSV round-trip. Columns: model,sku,op,shard,f0,f1,runtime (f1 empty for
  /// 1-feature ops).
  std::string to_csv() const;
  static ProfileDb from_csv(const std::string& text);

  void write_file(const std::string& path) const;
  static ProfileDb read_file(const std::string& path);

 private:
  std::string model_name_;
  std::string sku_name_;
  std::map<ProfileKey, std::vector<ProfilePoint>> points_;
};

}  // namespace vidur
