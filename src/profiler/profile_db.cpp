#include "profiler/profile_db.h"

#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/csv.h"

namespace vidur {

void ProfileDb::add(const ProfileKey& key, ProfilePoint point) {
  VIDUR_CHECK(!point.features.empty());
  VIDUR_CHECK(point.runtime >= 0.0);
  points_[key].push_back(std::move(point));
}

const std::vector<ProfilePoint>& ProfileDb::points(
    const ProfileKey& key) const {
  auto it = points_.find(key);
  VIDUR_CHECK_MSG(it != points_.end(),
                  "no profile data for op=" << op_name(key.op)
                                            << " shard=" << key.shard);
  return it->second;
}

bool ProfileDb::contains(const ProfileKey& key) const {
  return points_.count(key) > 0;
}

std::vector<ProfileKey> ProfileDb::keys() const {
  std::vector<ProfileKey> out;
  out.reserve(points_.size());
  for (const auto& [key, pts] : points_) out.push_back(key);
  return out;
}

std::size_t ProfileDb::total_points() const {
  std::size_t n = 0;
  for (const auto& [key, pts] : points_) n += pts.size();
  return n;
}

std::string ProfileDb::to_csv() const {
  CsvWriter writer(
      {"model", "sku", "op", "shard", "f0", "f1", "f2", "runtime"});
  auto fmt = [](double v) {
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
  };
  for (const auto& [key, pts] : points_) {
    for (const auto& p : pts) {
      writer.add_row({model_name_, sku_name_, op_name(key.op),
                      std::to_string(key.shard), fmt(p.features[0]),
                      p.features.size() > 1 ? fmt(p.features[1]) : "",
                      p.features.size() > 2 ? fmt(p.features[2]) : "",
                      fmt(p.runtime)});
    }
  }
  return writer.str();
}

ProfileDb ProfileDb::from_csv(const std::string& text) {
  const CsvDocument doc = parse_csv(text);
  const auto c_model = doc.column("model");
  const auto c_sku = doc.column("sku");
  const auto c_op = doc.column("op");
  const auto c_shard = doc.column("shard");
  const auto c_f0 = doc.column("f0");
  const auto c_f1 = doc.column("f1");
  const auto c_f2 = doc.column("f2");
  const auto c_rt = doc.column("runtime");

  ProfileDb db;
  for (const auto& row : doc.rows) {
    if (db.model_name_.empty()) {
      db.model_name_ = row[c_model];
      db.sku_name_ = row[c_sku];
    }
    ProfileKey key{op_from_name(row[c_op]), std::stoi(row[c_shard])};
    ProfilePoint point;
    point.features.push_back(std::stod(row[c_f0]));
    if (!row[c_f1].empty()) point.features.push_back(std::stod(row[c_f1]));
    if (!row[c_f2].empty()) point.features.push_back(std::stod(row[c_f2]));
    point.runtime = std::stod(row[c_rt]);
    db.add(key, std::move(point));
  }
  return db;
}

void ProfileDb::write_file(const std::string& path) const {
  std::ofstream out(path);
  VIDUR_CHECK_MSG(out.good(), "cannot write profile file: " << path);
  out << to_csv();
}

ProfileDb ProfileDb::read_file(const std::string& path) {
  std::ifstream in(path);
  VIDUR_CHECK_MSG(in.good(), "cannot read profile file: " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_csv(buffer.str());
}

}  // namespace vidur
