// Offline profiler (paper §4.3).
//
// Samples the ground-truth device at a sparse grid of input sizes per
// operator — with measurement noise, taking the median over repeat runs,
// exactly like a CUPTI-based profiling pass — and fills a ProfileDb.
//
// Key properties mirrored from the paper:
//   * token-level ops are profiled once per tensor-parallel sharding variant,
//     derived automatically from the model spec (single-GPU profiling);
//   * attention prefill/decode are profiled separately on 2-D grids;
//   * collectives are profiled model-agnostically over transfer sizes.
#pragma once

#include <cstdint>
#include <vector>

#include "hardware/sku.h"
#include "model/model_spec.h"
#include "profiler/profile_db.h"

namespace vidur {

struct ProfilerOptions {
  /// Repeat measurements per grid point; the median is recorded.
  int samples_per_point = 3;
  /// Multiplicative lognormal measurement noise (sigma of log-runtime).
  double noise_sigma = 0.015;
  /// Largest iteration token count profiled for token-level ops.
  long max_tokens = 16384;
  /// Largest single-request context profiled for prefill attention.
  long max_prefill_kv = 8192;
  /// Largest total batch KV profiled for decode attention.
  long max_decode_kv = 2'000'000;
  /// Largest batch size profiled for decode attention.
  int max_batch_size = 512;
  /// Grid density multiplier (1.0 = paper-like sparse grid; larger = denser).
  double grid_density = 1.0;
  std::uint64_t seed = 0x51d07ULL;
};

/// Profile every operator of `model` on `node` for each TP degree in
/// `tp_degrees` (plus collectives for those world sizes).
ProfileDb profile_model(const ModelSpec& model, const NodeSpec& node,
                        const std::vector<int>& tp_degrees,
                        const ProfilerOptions& options = {});

/// The token-count grid the profiler uses (exposed for tests/ablations).
std::vector<long> token_grid(long max_tokens, double density = 1.0);

}  // namespace vidur
