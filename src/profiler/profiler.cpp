#include "profiler/profiler.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"
#include "operators/ground_truth.h"
#include "operators/op_shapes.h"

namespace vidur {

namespace {

/// One noisy "measurement": median of k lognormal-jittered true runtimes.
double measure(double truth, int samples, double sigma, Rng& rng) {
  std::vector<double> runs(static_cast<std::size_t>(samples));
  for (auto& r : runs) r = truth * std::exp(sigma * rng.normal());
  std::sort(runs.begin(), runs.end());
  return runs[runs.size() / 2];
}

void add_grid_dimension(std::vector<long>& grid, long from, long to,
                        long step) {
  for (long v = from; v <= to; v += step) grid.push_back(v);
}

std::vector<long> bytes_grid(long max_bytes) {
  std::vector<long> grid;
  for (long b = 4096; b <= max_bytes; b *= 2) grid.push_back(b);
  // Off-power-of-two points so the estimator sees mid-interval behaviour.
  for (long b = 4096 * 3; b <= max_bytes; b *= 2) grid.push_back(b);
  for (long b = 4096 * 5; b <= max_bytes; b *= 2) grid.push_back(b);
  for (long b = 4096 * 7; b <= max_bytes; b *= 2) grid.push_back(b);
  std::sort(grid.begin(), grid.end());
  return grid;
}

}  // namespace

std::vector<long> token_grid(long max_tokens, double density) {
  VIDUR_CHECK(max_tokens >= 1);
  VIDUR_CHECK(density > 0);
  std::vector<long> grid;
  const auto stride = [&](long base) {
    return std::max<long>(1, static_cast<long>(std::lround(base / density)));
  };
  add_grid_dimension(grid, 1, std::min<long>(16, max_tokens), stride(1));
  add_grid_dimension(grid, 16, std::min<long>(128, max_tokens), stride(8));
  add_grid_dimension(grid, 128, std::min<long>(512, max_tokens), stride(32));
  add_grid_dimension(grid, 512, std::min<long>(2048, max_tokens), stride(64));
  add_grid_dimension(grid, 2048, std::min<long>(8192, max_tokens),
                     stride(256));
  add_grid_dimension(grid, 8192, max_tokens, stride(512));

  // Domain knowledge (paper §4.1: the profiler knows the kernel structure):
  // GEMM runtimes step at tile boundaries, i.e. just past multiples of the
  // 32-row minimum tile. Drop markers right after each boundary so the
  // estimator can pin every plateau edge; tripled markers keep the plateau
  // visible in (almost) every bootstrap resample of the forest.
  std::vector<long> markers;
  for (long v : grid) {
    if (v >= 32 && v % 32 == 0 && v < max_tokens) {
      markers.push_back(std::min(max_tokens, v + 1));
      markers.push_back(std::min(max_tokens, v + 2));
      markers.push_back(std::min(max_tokens, v + 3));
    }
  }
  grid.insert(grid.end(), markers.begin(), markers.end());

  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

ProfileDb profile_model(const ModelSpec& model, const NodeSpec& node,
                        const std::vector<int>& tp_degrees,
                        const ProfilerOptions& options) {
  VIDUR_CHECK(!tp_degrees.empty());
  VIDUR_CHECK(options.samples_per_point >= 1);

  ProfileDb db(model.name, node.sku.name);
  Rng rng(options.seed);

  const auto tokens = token_grid(options.max_tokens, options.grid_density);

  for (int tp : tp_degrees) {
    const OpShapes shapes(model, tp);

    // --- Token-level operators: 1-D grid over iteration token count. ---
    for (OpType op : all_op_types()) {
      if (op_class(op) != OpClass::kTokenLevel) continue;
      for (long t : tokens) {
        OpInput in;
        in.tokens = t;
        const double truth = ground_truth_op_time(node, shapes, op, in);
        db.add({op, tp},
               {in.features(op), measure(truth, options.samples_per_point,
                                         options.noise_sigma, rng)});
      }
    }

    // --- Prefill attention: 2-D (q, kv) grid with kv >= q (kv > q arises
    //     under chunked prefill where a chunk attends over its prefix).
    //     Prefill cost is quadratic in q, so the q axis is densely spaced
    //     (~2^(1/3) multiplicative steps) to bound the forest's staircase
    //     interpolation error. ---
    std::vector<long> q_grid;
    for (double q = 32.0; q <= static_cast<double>(options.max_prefill_kv);
         q *= 1.26)
      q_grid.push_back(static_cast<long>(std::lround(q / 8.0)) * 8);
    q_grid.push_back(options.max_prefill_kv);
    std::sort(q_grid.begin(), q_grid.end());
    q_grid.erase(std::unique(q_grid.begin(), q_grid.end()), q_grid.end());
    for (long q : q_grid) {
      std::vector<long> kv_values = {q};
      for (long extra : {128L, 256L, 512L, 1024L, 2048L, 4096L}) {
        if (q + extra <= options.max_prefill_kv)
          kv_values.push_back(q + extra);
      }
      for (long kv : kv_values) {
        OpInput in;
        in.q_tokens = q;
        in.kv_tokens = kv;
        const double truth =
            ground_truth_op_time(node, shapes, OpType::kAttnPrefill, in);
        db.add({OpType::kAttnPrefill, tp},
               {in.features(OpType::kAttnPrefill),
                measure(truth, options.samples_per_point, options.noise_sigma,
                        rng)});
      }
    }

    // --- Decode attention: 2-D (total KV tokens, batch size) grid.
    //     Powers of two plus 1.5x intermediates on the batch axis keep the
    //     forest's splits tight between the octaves. ---
    std::vector<int> batch_grid;
    for (int b = 1; b <= options.max_batch_size; b *= 2) {
      batch_grid.push_back(b);
      if (b * 3 / 2 <= options.max_batch_size && b > 1)
        batch_grid.push_back(b * 3 / 2);
    }
    std::sort(batch_grid.begin(), batch_grid.end());
    for (int batch : batch_grid) {
      const long kv_min = batch * 16L;
      const long kv_max =
          std::min<long>(options.max_decode_kv, batch * 8192L);
      // Log-spaced KV totals between the per-batch extremes.
      const int steps = 16;
      for (int i = 0; i <= steps; ++i) {
        const double frac = static_cast<double>(i) / steps;
        const long kv = static_cast<long>(
            std::lround(kv_min * std::pow(static_cast<double>(kv_max) / kv_min,
                                          frac)));
        OpInput in;
        in.kv_tokens = kv;
        in.batch_size = batch;
        const double truth =
            ground_truth_op_time(node, shapes, OpType::kAttnDecode, in);
        db.add({OpType::kAttnDecode, tp},
               {in.features(OpType::kAttnDecode),
                measure(truth, options.samples_per_point, options.noise_sigma,
                        rng)});
      }
    }
  }

  // --- Collectives: model-agnostic, per world size (paper §4.3). ---
  const OpShapes shapes_tp1(model, 1);
  const long max_bytes = static_cast<long>(options.max_tokens) *
                         model.embed_dim * kBytesPerElement;
  for (int world : tp_degrees) {
    if (world < 2) continue;
    for (long bytes : bytes_grid(max_bytes)) {
      OpInput in;
      in.bytes = bytes;
      in.world = world;
      const double truth =
          ground_truth_op_time(node, shapes_tp1, OpType::kAllReduce, in);
      db.add({OpType::kAllReduce, world},
             {in.features(OpType::kAllReduce),
              measure(truth, options.samples_per_point, options.noise_sigma,
                      rng)});
    }
  }
  for (long bytes : bytes_grid(max_bytes)) {
    OpInput in;
    in.bytes = bytes;
    const double truth =
        ground_truth_op_time(node, shapes_tp1, OpType::kSendRecv, in);
    db.add({OpType::kSendRecv, 1},
           {in.features(OpType::kSendRecv),
            measure(truth, options.samples_per_point, options.noise_sigma,
                    rng)});
  }

  return db;
}

}  // namespace vidur
