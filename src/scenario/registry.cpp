#include "scenario/registry.h"

#include "common/check.h"

namespace vidur {

namespace {

// Built-in scenarios are sized for the fidelity deployment the benches use
// (LLaMA2-7B, TP1, one A100 replica): baseline rates sit near that
// configuration's capacity so the time-varying profiles actually push the
// system into and out of overload. SLO targets follow the interactive /
// batch split: interactive tenants want sub-second TTFT and smooth token
// cadence; batch tenants only care about eventual completion.

SloSpec interactive_slo() {
  return SloSpec{.ttft_target = 2.0, .tbt_target = 0.5};
}

SloSpec batch_slo() {
  return SloSpec{.ttft_target = 30.0, .tbt_target = 2.0};
}

Scenario make_diurnal_chat() {
  Scenario s;
  s.name = "diurnal-chat";
  s.description =
      "Single chat tenant under a day/night sinusoid: load swings from 40% "
      "to 160% of the baseline rate over a 10-minute period.";
  s.tenants = {TenantSpec{.name = "chat",
                          .trace = trace_by_name("chat1m"),
                          .share = 1.0,
                          .priority = 0,
                          .slo = interactive_slo()}};
  s.arrival = ArrivalSpec{ArrivalKind::kPoisson, /*qps=*/3.0, /*cv=*/0};
  s.profile = RateProfile::diurnal(/*period=*/600.0, /*low=*/0.4,
                                   /*high=*/1.6);
  s.num_requests = 800;
  return s;
}

Scenario make_ramp_surge() {
  Scenario s;
  s.name = "ramp-surge";
  s.description =
      "Single chat tenant with traffic ramping linearly from half to double "
      "the baseline rate over five minutes, then holding (launch-day ramp).";
  s.tenants = {TenantSpec{.name = "chat",
                          .trace = trace_by_name("chat1m"),
                          .share = 1.0,
                          .priority = 0,
                          .slo = interactive_slo()}};
  s.arrival = ArrivalSpec{ArrivalKind::kPoisson, /*qps=*/2.5, /*cv=*/0};
  s.profile = RateProfile::ramp(/*start=*/0.5, /*end=*/2.0,
                                /*duration=*/300.0);
  s.num_requests = 800;
  return s;
}

Scenario make_flash_crowd_mixed() {
  Scenario s;
  s.name = "flash-crowd-mixed";
  s.description =
      "Interactive chat (priority 1) sharing the cluster with background "
      "summarization; a 2-minute flash crowd quadruples the bursty baseline "
      "rate and overloads the cluster.";
  s.tenants = {TenantSpec{.name = "interactive",
                          .trace = trace_by_name("chat1m"),
                          .share = 0.7,
                          .priority = 1,
                          .slo = interactive_slo()},
               TenantSpec{.name = "batch",
                          .trace = trace_by_name("arxiv4k"),
                          .share = 0.3,
                          .priority = 0,
                          .slo = batch_slo()}};
  s.arrival = ArrivalSpec{ArrivalKind::kGamma, /*qps=*/2.0, /*cv=*/2.0};
  s.profile = RateProfile::spike(/*baseline=*/1.0, /*spike=*/4.0,
                                 /*spike_start=*/60.0,
                                 /*spike_duration=*/120.0);
  s.num_requests = 600;
  return s;
}

Scenario make_batch_over_interactive() {
  Scenario s;
  s.name = "batch-over-interactive";
  s.description =
      "A minority interactive tenant (priority 1) competing with "
      "decode-heavy translation batch traffic at a rate just above "
      "capacity: the case priority-aware routing exists for.";
  s.tenants = {TenantSpec{.name = "interactive",
                          .trace = trace_by_name("chat1m"),
                          .share = 0.35,
                          .priority = 1,
                          .slo = interactive_slo()},
               TenantSpec{.name = "batch",
                          .trace = trace_by_name("bwb4k"),
                          .share = 0.65,
                          .priority = 0,
                          .slo = batch_slo()}};
  s.arrival = ArrivalSpec{ArrivalKind::kPoisson, /*qps=*/1.5, /*cv=*/0};
  s.profile = RateProfile::constant();
  s.num_requests = 500;
  return s;
}

Scenario make_stepload_mixed() {
  Scenario s;
  s.name = "stepload-mixed";
  s.description =
      "Two tenants under an explicit piecewise schedule: quiet start, "
      "sustained plateau at 3x, then a cool-down tail.";
  s.tenants = {TenantSpec{.name = "chat",
                          .trace = trace_by_name("chat1m"),
                          .share = 0.5,
                          .priority = 1,
                          .slo = interactive_slo()},
               TenantSpec{.name = "summarize",
                          .trace = trace_by_name("arxiv4k"),
                          .share = 0.5,
                          .priority = 0,
                          .slo = batch_slo()}};
  s.arrival = ArrivalSpec{ArrivalKind::kPoisson, /*qps=*/1.5, /*cv=*/0};
  s.profile = RateProfile::piecewise({RateStep{0.0, 0.5},
                                      RateStep{120.0, 3.0},
                                      RateStep{360.0, 1.0}});
  s.num_requests = 600;
  return s;
}

Scenario make_session_chat() {
  Scenario s;
  s.name = "session-chat";
  s.description =
      "Single chat tenant of multi-turn sessions (up to 6 turns, 20 s mean "
      "think time) over a 512-token shared system prompt: each turn's "
      "prompt replays the conversation so far, the workload prefix caching "
      "exists for.";
  TenantSpec chat{.name = "chat",
                  .trace = trace_by_name("chat1m"),
                  .share = 1.0,
                  .priority = 0,
                  .slo = interactive_slo()};
  chat.session = SessionSpec{.max_turns = 6,
                             .mean_think_time_s = 20.0,
                             .shared_prefix_tokens = 512,
                             .prefix_groups = 1,
                             .max_context_tokens = 8192};
  s.tenants = {chat};
  s.arrival = ArrivalSpec{ArrivalKind::kPoisson, /*qps=*/1.0, /*cv=*/0};
  s.profile = RateProfile::constant();
  s.num_requests = 600;
  return s;
}

Scenario make_shared_prefix_mix() {
  Scenario s;
  s.name = "shared-prefix-mix";
  s.description =
      "Two agent tenants whose single-turn requests each carry a long "
      "shared system prompt (one tenant rotates over 4 prompts), competing "
      "with uncached background summarization: the tenant-mix case for "
      "per-tenant hit-rate attribution.";
  TenantSpec assistant{.name = "assistant",
                       .trace = trace_by_name("chat1m"),
                       .share = 0.45,
                       .priority = 1,
                       .slo = interactive_slo()};
  assistant.session = SessionSpec{.max_turns = 1,
                                  .mean_think_time_s = 0.0,
                                  .shared_prefix_tokens = 1024,
                                  .prefix_groups = 1,
                                  .max_context_tokens = 8192};
  TenantSpec agents{.name = "agents",
                    .trace = trace_by_name("chat1m"),
                    .share = 0.35,
                    .priority = 0,
                    .slo = interactive_slo()};
  agents.session = SessionSpec{.max_turns = 1,
                               .mean_think_time_s = 0.0,
                               .shared_prefix_tokens = 768,
                               .prefix_groups = 4,
                               .max_context_tokens = 8192};
  TenantSpec batch{.name = "batch",
                   .trace = trace_by_name("arxiv4k"),
                   .share = 0.2,
                   .priority = 0,
                   .slo = batch_slo()};
  s.tenants = {assistant, agents, batch};
  s.arrival = ArrivalSpec{ArrivalKind::kPoisson, /*qps=*/2.0, /*cv=*/0};
  s.profile = RateProfile::constant();
  s.num_requests = 600;
  return s;
}

Scenario make_spot_churn() {
  Scenario s;
  s.name = "spot-churn";
  s.description =
      "Chaos workload for spot-instance churn: interactive multi-turn chat "
      "(priority 1, shared system prompt, so a reclaimed replica tears down "
      "live sessions' cached prefixes) over sheddable background "
      "summarization. Pair with a faults block of scheduled spot windows on "
      "an elastic fleet.";
  TenantSpec chat{.name = "chat",
                  .trace = trace_by_name("chat1m"),
                  .share = 0.7,
                  .priority = 1,
                  .slo = interactive_slo()};
  chat.session = SessionSpec{.max_turns = 4,
                             .mean_think_time_s = 10.0,
                             .shared_prefix_tokens = 512,
                             .prefix_groups = 1,
                             .max_context_tokens = 8192};
  TenantSpec batch{.name = "batch",
                   .trace = trace_by_name("arxiv4k"),
                   .share = 0.3,
                   .priority = 0,
                   .slo = batch_slo()};
  s.tenants = {chat, batch};
  s.arrival = ArrivalSpec{ArrivalKind::kPoisson, /*qps=*/1.5, /*cv=*/0};
  s.profile = RateProfile::constant();
  s.num_requests = 500;
  return s;
}

Scenario make_straggler_tail() {
  Scenario s;
  s.name = "straggler-tail";
  s.description =
      "Chaos workload for degraded-replica tail latency: a single "
      "interactive chat tenant at steady load near capacity, where any "
      "slowed replica shows up directly in TBT p99. Pair with a faults "
      "block of degrade windows (no kills needed).";
  s.tenants = {TenantSpec{.name = "chat",
                          .trace = trace_by_name("chat1m"),
                          .share = 1.0,
                          .priority = 0,
                          .slo = interactive_slo()}};
  s.arrival = ArrivalSpec{ArrivalKind::kPoisson, /*qps=*/2.5, /*cv=*/0};
  s.profile = RateProfile::constant();
  s.num_requests = 600;
  return s;
}

std::vector<Scenario> make_builtins() {
  std::vector<Scenario> scenarios;
  scenarios.push_back(make_diurnal_chat());
  scenarios.push_back(make_ramp_surge());
  scenarios.push_back(make_flash_crowd_mixed());
  scenarios.push_back(make_batch_over_interactive());
  scenarios.push_back(make_stepload_mixed());
  scenarios.push_back(make_session_chat());
  scenarios.push_back(make_shared_prefix_mix());
  scenarios.push_back(make_spot_churn());
  scenarios.push_back(make_straggler_tail());
  return scenarios;
}

}  // namespace

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    for (Scenario& s : make_builtins()) r->add(std::move(s));
    return r;
  }();
  return *registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  scenario.validate();
  VIDUR_CHECK_MSG(!contains(scenario.name),
                  "scenario '" << scenario.name << "' is already registered");
  scenarios_.push_back(std::move(scenario));
}

bool ScenarioRegistry::contains(const std::string& name) const {
  for (const Scenario& s : scenarios_)
    if (s.name == name) return true;
  return false;
}

const Scenario& ScenarioRegistry::get(const std::string& name) const {
  for (const Scenario& s : scenarios_)
    if (s.name == name) return s;
  throw Error("unknown scenario: " + name);
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const Scenario& s : scenarios_) out.push_back(s.name);
  return out;
}

const Scenario& scenario_by_name(const std::string& name) {
  return ScenarioRegistry::instance().get(name);
}

const std::vector<std::string>& builtin_scenario_names() {
  // Derived from the built-in set itself, not from a registry snapshot:
  // scenarios registered by users must never appear as "built-in"
  // regardless of call order.
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const Scenario& s : make_builtins()) out.push_back(s.name);
    return out;
  }();
  return names;
}

}  // namespace vidur
