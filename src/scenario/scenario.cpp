#include "scenario/scenario.h"

#include <cmath>
#include <set>
#include <sstream>

#include "common/check.h"

namespace vidur {

void Scenario::validate() const {
  VIDUR_CHECK_MSG(!name.empty(), "scenario needs a name");
  VIDUR_CHECK_MSG(!tenants.empty(),
                  "scenario '" << name << "' needs at least one tenant");
  VIDUR_CHECK_MSG(num_requests > 0,
                  "scenario '" << name << "': num_requests must be > 0");
  VIDUR_CHECK_MSG(std::isfinite(max_duration) && max_duration >= 0,
                  "scenario '" << name << "': invalid max_duration");
  std::set<std::string> seen;
  for (const TenantSpec& t : tenants) {
    VIDUR_CHECK_MSG(!t.name.empty(),
                    "scenario '" << name << "': tenant needs a name");
    VIDUR_CHECK_MSG(seen.insert(t.name).second,
                    "scenario '" << name << "': duplicate tenant '" << t.name
                                 << "'");
    VIDUR_CHECK_MSG(std::isfinite(t.share) && t.share > 0,
                    "scenario '" << name << "': tenant '" << t.name
                                 << "' share must be > 0");
    t.trace.validate();
  }
  arrival.validate();
  profile.validate();
  if (arrival.kind == ArrivalKind::kStatic)
    VIDUR_CHECK_MSG(profile.kind() == RateProfileKind::kConstant,
                    "scenario '" << name
                                 << "': static arrivals have no timeline for "
                                    "a time-varying rate profile");
}

std::vector<TenantInfo> Scenario::tenant_infos() const {
  std::vector<TenantInfo> infos;
  infos.reserve(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i)
    infos.push_back(TenantInfo{.id = static_cast<TenantId>(i),
                               .name = tenants[i].name,
                               .priority = tenants[i].priority,
                               .slo = tenants[i].slo});
  return infos;
}

double Scenario::expected_requests(Seconds horizon) const {
  VIDUR_CHECK_MSG(arrival.kind != ArrivalKind::kStatic,
                  "static arrivals have no rate to integrate");
  return arrival.qps * profile.mean_factor(horizon) * horizon;
}

std::string Scenario::to_string() const {
  std::ostringstream os;
  os << name << ": " << tenants.size() << " tenant"
     << (tenants.size() == 1 ? "" : "s") << " (";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    if (i > 0) os << ", ";
    os << tenants[i].name << " " << tenants[i].trace.name;
  }
  os << "), ";
  switch (arrival.kind) {
    case ArrivalKind::kStatic:
      os << "static";
      break;
    case ArrivalKind::kPoisson:
      os << "poisson @ " << arrival.qps << " qps";
      break;
    case ArrivalKind::kGamma:
      os << "gamma(cv=" << arrival.cv << ") @ " << arrival.qps << " qps";
      break;
  }
  os << " x " << profile.to_string() << ", " << num_requests << " requests";
  return os.str();
}

namespace {

/// One inter-arrival gap of the baseline renewal process at rate `qps`.
Seconds next_gap(Rng& rng, const ArrivalSpec& arrival, double qps) {
  if (arrival.kind == ArrivalKind::kGamma) {
    const double shape = 1.0 / (arrival.cv * arrival.cv);
    const double scale = arrival.cv * arrival.cv / qps;
    return rng.gamma(shape, scale);
  }
  return rng.exponential(qps);
}

}  // namespace

Trace generate_scenario_trace(const Scenario& scenario, std::uint64_t seed) {
  scenario.validate();

  Rng master(seed);
  // Per-tenant length streams, forked so each tenant's sampled lengths are
  // independent of how the other tenants consume randomness.
  std::vector<Rng> tenant_rngs;
  tenant_rngs.reserve(scenario.tenants.size());
  for (std::size_t i = 0; i < scenario.tenants.size(); ++i)
    tenant_rngs.push_back(master.fork());

  double total_share = 0.0;
  for (const TenantSpec& t : scenario.tenants) total_share += t.share;

  const auto pick_tenant = [&]() -> std::size_t {
    double u = master.uniform() * total_share;
    for (std::size_t i = 0; i + 1 < scenario.tenants.size(); ++i) {
      u -= scenario.tenants[i].share;
      if (u < 0) return i;
    }
    return scenario.tenants.size() - 1;
  };

  Trace out;
  out.reserve(static_cast<std::size_t>(scenario.num_requests));

  const auto emit = [&](Seconds arrival_time) {
    const std::size_t i = pick_tenant();
    Request r = sample_request(scenario.tenants[i].trace, tenant_rngs[i]);
    r.id = static_cast<RequestId>(out.size());
    r.arrival_time = arrival_time;
    r.tenant = static_cast<TenantId>(i);
    r.priority = scenario.tenants[i].priority;
    out.push_back(r);
  };

  if (scenario.arrival.kind == ArrivalKind::kStatic) {
    for (int n = 0; n < scenario.num_requests; ++n) emit(0.0);
    return out;
  }

  // Thinning: candidates from the baseline process at the profile's peak
  // rate, accepted with probability factor(t) / peak.
  const double peak = scenario.profile.peak_factor();
  VIDUR_CHECK_MSG(peak > 0, "scenario '" << scenario.name
                                         << "': rate profile peak is zero");
  const double peak_qps = scenario.arrival.qps * peak;
  // A profile that is ~zero from some point on would spin forever when no
  // max_duration bounds the horizon; cap the candidate budget well above
  // any plausible thinning rejection rate.
  const std::int64_t max_candidates =
      1'000'000 + 10'000 * static_cast<std::int64_t>(scenario.num_requests);

  Seconds clock = 0.0;
  for (std::int64_t candidates = 0;
       static_cast<int>(out.size()) < scenario.num_requests; ++candidates) {
    VIDUR_CHECK_MSG(candidates < max_candidates,
                    "scenario '"
                        << scenario.name
                        << "': rate profile starves arrivals (accepted "
                        << out.size() << " of " << scenario.num_requests
                        << " requests); set max_duration or raise the "
                           "profile's floor");
    clock += next_gap(master, scenario.arrival, peak_qps);
    if (scenario.max_duration > 0 && clock > scenario.max_duration) break;
    const double accept = scenario.profile.factor_at(clock) / peak;
    if (master.bernoulli(accept)) emit(clock);
  }
  return out;
}

}  // namespace vidur
