#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/check.h"

namespace vidur {

void Scenario::validate() const {
  VIDUR_CHECK_MSG(!name.empty(), "scenario needs a name");
  VIDUR_CHECK_MSG(!tenants.empty(),
                  "scenario '" << name << "' needs at least one tenant");
  VIDUR_CHECK_MSG(num_requests > 0,
                  "scenario '" << name << "': num_requests must be > 0");
  VIDUR_CHECK_MSG(std::isfinite(max_duration) && max_duration >= 0,
                  "scenario '" << name << "': invalid max_duration");
  std::set<std::string> seen;
  for (const TenantSpec& t : tenants) {
    VIDUR_CHECK_MSG(!t.name.empty(),
                    "scenario '" << name << "': tenant needs a name");
    VIDUR_CHECK_MSG(seen.insert(t.name).second,
                    "scenario '" << name << "': duplicate tenant '" << t.name
                                 << "'");
    VIDUR_CHECK_MSG(std::isfinite(t.share) && t.share > 0,
                    "scenario '" << name << "': tenant '" << t.name
                                 << "' share must be > 0");
    t.trace.validate();
    const SessionSpec& s = t.session;
    VIDUR_CHECK_MSG(s.max_turns >= 1,
                    "scenario '" << name << "': tenant '" << t.name
                                 << "' session.max_turns must be >= 1");
    VIDUR_CHECK_MSG(
        std::isfinite(s.mean_think_time_s) && s.mean_think_time_s >= 0,
        "scenario '" << name << "': tenant '" << t.name
                     << "' session.mean_think_time_s must be >= 0");
    VIDUR_CHECK_MSG(s.shared_prefix_tokens >= 0,
                    "scenario '" << name << "': tenant '" << t.name
                                 << "' session.shared_prefix_tokens must be "
                                    ">= 0");
    VIDUR_CHECK_MSG(s.prefix_groups >= 1,
                    "scenario '" << name << "': tenant '" << t.name
                                 << "' session.prefix_groups must be >= 1");
    VIDUR_CHECK_MSG(s.max_context_tokens > s.shared_prefix_tokens,
                    "scenario '" << name << "': tenant '" << t.name
                                 << "' session.max_context_tokens must "
                                    "exceed session.shared_prefix_tokens");
  }
  arrival.validate();
  profile.validate();
  if (arrival.kind == ArrivalKind::kStatic)
    VIDUR_CHECK_MSG(profile.kind() == RateProfileKind::kConstant,
                    "scenario '" << name
                                 << "': static arrivals have no timeline for "
                                    "a time-varying rate profile");
}

std::vector<TenantInfo> Scenario::tenant_infos() const {
  std::vector<TenantInfo> infos;
  infos.reserve(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i)
    infos.push_back(TenantInfo{.id = static_cast<TenantId>(i),
                               .name = tenants[i].name,
                               .priority = tenants[i].priority,
                               .slo = tenants[i].slo});
  return infos;
}

double Scenario::expected_requests(Seconds horizon) const {
  VIDUR_CHECK_MSG(arrival.kind != ArrivalKind::kStatic,
                  "static arrivals have no rate to integrate");
  return arrival.qps * profile.mean_factor(horizon) * horizon;
}

std::string Scenario::to_string() const {
  std::ostringstream os;
  os << name << ": " << tenants.size() << " tenant"
     << (tenants.size() == 1 ? "" : "s") << " (";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    if (i > 0) os << ", ";
    os << tenants[i].name << " " << tenants[i].trace.name;
    const SessionSpec& sess = tenants[i].session;
    if (sess.enabled()) {
      os << " [sessions:";
      if (sess.max_turns > 1) os << " <=" << sess.max_turns << " turns";
      if (sess.shared_prefix_tokens > 0)
        os << " shared-prefix " << sess.shared_prefix_tokens;
      if (sess.prefix_groups > 1) os << " x" << sess.prefix_groups;
      os << "]";
    }
  }
  os << "), ";
  switch (arrival.kind) {
    case ArrivalKind::kStatic:
      os << "static";
      break;
    case ArrivalKind::kPoisson:
      os << "poisson @ " << arrival.qps << " qps";
      break;
    case ArrivalKind::kGamma:
      os << "gamma(cv=" << arrival.cv << ") @ " << arrival.qps << " qps";
      break;
  }
  os << " x " << profile.to_string() << ", " << num_requests << " requests";
  return os.str();
}

namespace {

/// One inter-arrival gap of the baseline renewal process at rate `qps`.
Seconds next_gap(Rng& rng, const ArrivalSpec& arrival, double qps) {
  if (arrival.kind == ArrivalKind::kGamma) {
    const double shape = 1.0 / (arrival.cv * arrival.cv);
    const double scale = arrival.cv * arrival.cv / qps;
    return rng.gamma(shape, scale);
  }
  return rng.exponential(qps);
}

}  // namespace

Trace generate_scenario_trace(const Scenario& scenario, std::uint64_t seed) {
  scenario.validate();

  Rng master(seed);
  // Per-tenant length streams, forked so each tenant's sampled lengths are
  // independent of how the other tenants consume randomness.
  std::vector<Rng> tenant_rngs;
  tenant_rngs.reserve(scenario.tenants.size());
  for (std::size_t i = 0; i < scenario.tenants.size(); ++i)
    tenant_rngs.push_back(master.fork());

  double total_share = 0.0;
  for (const TenantSpec& t : scenario.tenants) total_share += t.share;

  const auto pick_tenant = [&]() -> std::size_t {
    double u = master.uniform() * total_share;
    for (std::size_t i = 0; i + 1 < scenario.tenants.size(); ++i) {
      u -= scenario.tenants[i].share;
      if (u < 0) return i;
    }
    return scenario.tenants.size() - 1;
  };

  Trace out;
  out.reserve(static_cast<std::size_t>(scenario.num_requests));

  bool any_sessions = false;
  for (const TenantSpec& t : scenario.tenants)
    any_sessions |= t.session.enabled();
  std::int64_t next_session = 0;

  const auto emit = [&](Seconds arrival_time) {
    const std::size_t i = pick_tenant();
    const TenantSpec& tenant = scenario.tenants[i];
    Rng& rng = tenant_rngs[i];
    Request r = sample_request(tenant.trace, rng);
    r.id = static_cast<RequestId>(out.size());
    r.arrival_time = arrival_time;
    r.tenant = static_cast<TenantId>(i);
    r.priority = tenant.priority;
    const SessionSpec& session = tenant.session;
    if (!session.enabled()) {
      out.push_back(r);
      return;
    }

    // Expand the arrival into a session: tag turn 0, then chain follow-up
    // turns whose prompts carry the whole preceding context.
    r.session = next_session++;
    r.shared_prefix_tokens = session.shared_prefix_tokens;
    if (session.shared_prefix_tokens > 0) {
      // Group ids are disjoint across tenants (stride > any group count),
      // so two tenants' prompts never alias in the prefix cache.
      const std::int64_t group =
          session.prefix_groups > 1
              ? rng.uniform_int(0, session.prefix_groups - 1)
              : 0;
      r.prefix_group = static_cast<std::int64_t>(i) * 65536 + group;
      r.prefill_tokens += session.shared_prefix_tokens;
    }
    r.prefill_tokens =
        std::min(r.prefill_tokens, session.max_context_tokens);
    const int turns =
        session.max_turns > 1
            ? static_cast<int>(rng.uniform_int(1, session.max_turns))
            : 1;
    out.push_back(r);
    Request prev = r;
    for (int turn = 1; turn < turns; ++turn) {
      Request next = sample_request(tenant.trace, rng);
      const Seconds gap =
          session.mean_think_time_s > 0
              ? rng.exponential(1.0 / session.mean_think_time_s)
              : 0.0;
      next.arrival_time = prev.arrival_time + gap;
      next.id = static_cast<RequestId>(out.size());
      next.tenant = prev.tenant;
      next.priority = prev.priority;
      next.session = prev.session;
      next.turn = turn;
      next.shared_prefix_tokens = prev.shared_prefix_tokens;
      next.prefix_group = prev.prefix_group;
      next.prefill_tokens = std::min(
          prev.prefill_tokens + prev.decode_tokens + next.prefill_tokens,
          session.max_context_tokens);
      out.push_back(next);
      prev = next;
    }
  };

  // Session expansion appends follow-up turns out of arrival order and may
  // overshoot num_requests; restore both invariants at the end.
  const auto finalize = [&](Trace trace) {
    if (!any_sessions) return trace;
    std::stable_sort(trace.begin(), trace.end(),
                     [](const Request& a, const Request& b) {
                       return a.arrival_time < b.arrival_time;
                     });
    if (static_cast<int>(trace.size()) > scenario.num_requests)
      trace.resize(static_cast<std::size_t>(scenario.num_requests));
    for (std::size_t k = 0; k < trace.size(); ++k)
      trace[k].id = static_cast<RequestId>(k);
    return trace;
  };

  if (scenario.arrival.kind == ArrivalKind::kStatic) {
    while (static_cast<int>(out.size()) < scenario.num_requests) emit(0.0);
    return finalize(std::move(out));
  }

  // Thinning: candidates from the baseline process at the profile's peak
  // rate, accepted with probability factor(t) / peak.
  const double peak = scenario.profile.peak_factor();
  VIDUR_CHECK_MSG(peak > 0, "scenario '" << scenario.name
                                         << "': rate profile peak is zero");
  const double peak_qps = scenario.arrival.qps * peak;
  // A profile that is ~zero from some point on would spin forever when no
  // max_duration bounds the horizon; cap the candidate budget well above
  // any plausible thinning rejection rate.
  const std::int64_t max_candidates =
      1'000'000 + 10'000 * static_cast<std::int64_t>(scenario.num_requests);

  Seconds clock = 0.0;
  for (std::int64_t candidates = 0;
       static_cast<int>(out.size()) < scenario.num_requests; ++candidates) {
    VIDUR_CHECK_MSG(candidates < max_candidates,
                    "scenario '"
                        << scenario.name
                        << "': rate profile starves arrivals (accepted "
                        << out.size() << " of " << scenario.num_requests
                        << " requests); set max_duration or raise the "
                           "profile's floor");
    clock += next_gap(master, scenario.arrival, peak_qps);
    if (scenario.max_duration > 0 && clock > scenario.max_duration) break;
    const double accept = scenario.profile.factor_at(clock) / peak;
    if (master.bernoulli(accept)) emit(clock);
  }
  return finalize(std::move(out));
}

}  // namespace vidur
