// Time-varying arrival-rate profiles for the scenario engine.
//
// A RateProfile maps simulation time to a dimensionless rate factor that
// multiplies a scenario's baseline arrival rate. Arrival generation uses
// thinning (Lewis & Shedler): candidate arrivals are drawn from the base
// renewal process at the profile's peak rate and accepted with probability
// factor(t) / peak_factor, which for a Poisson base yields an exact
// non-homogeneous Poisson process and a close approximation for bursty
// gamma-renewal bases.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace vidur {

enum class RateProfileKind {
  kConstant,   ///< factor 1 everywhere (plain stationary arrivals)
  kDiurnal,    ///< sinusoid between a low and a high factor (day/night)
  kRamp,       ///< linear ramp from one factor to another, then hold
  kSpike,      ///< flash crowd: baseline with a temporary burst window
  kPiecewise,  ///< step schedule: explicit (start_time, factor) segments
};

/// Stable name, e.g. "diurnal". Inverse: rate_profile_kind_from_name.
const std::string& rate_profile_kind_name(RateProfileKind kind);
RateProfileKind rate_profile_kind_from_name(const std::string& name);

/// One step of a piecewise schedule: `factor` applies from `start_time`
/// until the next step's start (the last step holds forever).
struct RateStep {
  Seconds start_time = 0.0;
  double factor = 1.0;

  bool operator==(const RateStep&) const = default;
};

class RateProfile {
 public:
  /// The default profile is constant (factor 1 at all times).
  RateProfile() = default;

  static RateProfile constant();
  /// Sinusoid with the given period oscillating in [low, high], starting at
  /// the midpoint and rising (peak at period/4).
  static RateProfile diurnal(Seconds period, double low, double high);
  /// Linear interpolation from `start` to `end` over `duration`, holding
  /// `end` afterwards.
  static RateProfile ramp(double start, double end, Seconds duration);
  /// Baseline factor with a burst of `spike` during
  /// [spike_start, spike_start + spike_duration).
  static RateProfile spike(double baseline, double spike, Seconds spike_start,
                           Seconds spike_duration);
  /// Explicit schedule; steps must be sorted by strictly increasing
  /// start_time, with the first at t=0.
  static RateProfile piecewise(std::vector<RateStep> steps);

  RateProfileKind kind() const { return kind_; }

  /// Rate factor at absolute simulation time `t` (>= 0).
  double factor_at(Seconds t) const;
  /// Supremum of factor_at over all t (the thinning envelope).
  double peak_factor() const;
  /// Mean factor over [0, horizon] (for sizing scenario request budgets).
  double mean_factor(Seconds horizon) const;

  /// Throws vidur::Error on non-finite/negative factors, non-positive
  /// periods or durations, or an ill-formed piecewise schedule.
  void validate() const;

  std::string to_string() const;

  /// Raw parameter view for serialization (src/api/): the meaning of each
  /// slot depends on kind() — see the private member comment. Reconstruct
  /// through the named factories, never from these directly.
  double raw_a() const { return a_; }
  double raw_b() const { return b_; }
  Seconds raw_t0() const { return t0_; }
  Seconds raw_t1() const { return t1_; }
  const std::vector<RateStep>& steps() const { return steps_; }

  bool operator==(const RateProfile&) const = default;

 private:
  RateProfileKind kind_ = RateProfileKind::kConstant;
  // kDiurnal: a=low, b=high, t0=period. kRamp: a=start, b=end, t0=duration.
  // kSpike: a=baseline, b=spike, t0=start, t1=duration.
  double a_ = 1.0;
  double b_ = 1.0;
  Seconds t0_ = 0.0;
  Seconds t1_ = 0.0;
  std::vector<RateStep> steps_;  // kPiecewise
};

}  // namespace vidur
