// Scenario engine: composes workloads into named, reproducible multi-tenant
// serving scenarios.
//
// A Scenario is (a) a set of tenants, each with its own length distribution
// (TraceSpec), share of traffic, priority and SLO, and (b) an arrival
// process — a baseline ArrivalSpec modulated by a time-varying RateProfile.
// generate_scenario_trace() merges everything into one tenant-tagged Trace
// that the existing Simulator plays unchanged; pass
// Scenario::tenant_infos() to the metrics layer to get per-tenant TTFT /
// TBT / throughput / SLO-attainment breakdowns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "scenario/rate_profile.h"
#include "workload/trace_generator.h"

namespace vidur {

/// Multi-turn session structure of one tenant's traffic (the prefix-cache
/// workload shape: conversations that reuse their own growing context, and
/// fleets of sessions sharing a system prompt). Disabled by default: every
/// arrival is an independent single-turn request, and generation is
/// bit-identical to the pre-session engine.
struct SessionSpec {
  /// Turns per session, drawn uniformly from [1, max_turns]. 1 disables
  /// multi-turn structure (but shared_prefix_tokens still applies).
  int max_turns = 1;
  /// Mean think-time gap between a turn's arrival and the next turn's
  /// (exponential); 0 makes follow-up turns arrive immediately.
  Seconds mean_think_time_s = 0.0;
  /// Leading prompt tokens shared across this tenant's sessions (a system
  /// prompt). Added on top of each first turn's sampled input length.
  TokenCount shared_prefix_tokens = 0;
  /// Distinct shared prompts the tenant rotates over (each session picks
  /// one uniformly); > 1 models a mixed-prompt tenant.
  int prefix_groups = 1;
  /// Context-window cap: a turn's grown prompt (previous context + new
  /// input) is truncated to this many tokens.
  TokenCount max_context_tokens = 16384;

  bool enabled() const { return max_turns > 1 || shared_prefix_tokens > 0; }

  bool operator==(const SessionSpec&) const = default;
};

/// One tenant's contribution to a scenario.
struct TenantSpec {
  std::string name;
  TraceSpec trace;
  /// Relative traffic weight; normalized over the scenario's tenants.
  double share = 1.0;
  /// Higher is more important (GlobalSchedulerKind::kPriority routing).
  int priority = 0;
  SloSpec slo;
  /// Session structure (multi-turn, shared prefixes); default single-turn.
  SessionSpec session;
};

struct Scenario {
  std::string name;
  std::string description;
  std::vector<TenantSpec> tenants;
  /// Baseline arrival process; the profile multiplies `arrival.qps` over
  /// time. kStatic requires a constant profile (there is no timeline to
  /// modulate).
  ArrivalSpec arrival;
  RateProfile profile;
  /// Total requests across tenants (generation may stop earlier when
  /// `max_duration` is hit).
  int num_requests = 1000;
  /// Optional horizon; 0 means unlimited (stop at num_requests).
  Seconds max_duration = 0.0;

  /// Throws vidur::Error on empty/duplicate tenant names, non-positive
  /// shares, degenerate tenant traces, or an invalid arrival/profile combo.
  void validate() const;

  /// Tenant identities (id = index into `tenants`) for MetricsCollector.
  std::vector<TenantInfo> tenant_infos() const;

  /// Requests expected from the modulated arrival process over
  /// [0, horizon] — qps x mean profile factor x horizon. Use it to budget
  /// `num_requests` so a trace covers a wanted timespan (and vice versa).
  /// Requires a non-static arrival kind.
  double expected_requests(Seconds horizon) const;

  /// Human-readable one-liner for reports.
  std::string to_string() const;
};

/// Generate the merged tenant-tagged trace of `scenario`.
///
/// Deterministic: the same (scenario, seed) yields the identical trace.
/// Arrivals come from the baseline renewal process run at the profile's
/// peak rate, thinned by factor(t) / peak_factor; each accepted arrival is
/// assigned a tenant by share, and its lengths are drawn from that tenant's
/// TraceSpec using a per-tenant forked RNG stream, so one tenant's length
/// sequence does not depend on the other tenants' sampling.
///
/// Tenants with an enabled SessionSpec expand each accepted arrival into a
/// whole session: turn j+1 arrives a think-time gap after turn j, its
/// prompt is turn j's full context (prompt + decoded tokens) plus a fresh
/// sampled input (capped at max_context_tokens), and every turn carries the
/// session id / turn index / shared-prefix tagging the prefix cache keys
/// on. The merged trace is re-sorted by arrival time and truncated to
/// num_requests.
Trace generate_scenario_trace(const Scenario& scenario, std::uint64_t seed);

}  // namespace vidur
