// Scenario engine: composes workloads into named, reproducible multi-tenant
// serving scenarios.
//
// A Scenario is (a) a set of tenants, each with its own length distribution
// (TraceSpec), share of traffic, priority and SLO, and (b) an arrival
// process — a baseline ArrivalSpec modulated by a time-varying RateProfile.
// generate_scenario_trace() merges everything into one tenant-tagged Trace
// that the existing Simulator plays unchanged; pass
// Scenario::tenant_infos() to the metrics layer to get per-tenant TTFT /
// TBT / throughput / SLO-attainment breakdowns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "scenario/rate_profile.h"
#include "workload/trace_generator.h"

namespace vidur {

/// One tenant's contribution to a scenario.
struct TenantSpec {
  std::string name;
  TraceSpec trace;
  /// Relative traffic weight; normalized over the scenario's tenants.
  double share = 1.0;
  /// Higher is more important (GlobalSchedulerKind::kPriority routing).
  int priority = 0;
  SloSpec slo;
};

struct Scenario {
  std::string name;
  std::string description;
  std::vector<TenantSpec> tenants;
  /// Baseline arrival process; the profile multiplies `arrival.qps` over
  /// time. kStatic requires a constant profile (there is no timeline to
  /// modulate).
  ArrivalSpec arrival;
  RateProfile profile;
  /// Total requests across tenants (generation may stop earlier when
  /// `max_duration` is hit).
  int num_requests = 1000;
  /// Optional horizon; 0 means unlimited (stop at num_requests).
  Seconds max_duration = 0.0;

  /// Throws vidur::Error on empty/duplicate tenant names, non-positive
  /// shares, degenerate tenant traces, or an invalid arrival/profile combo.
  void validate() const;

  /// Tenant identities (id = index into `tenants`) for MetricsCollector.
  std::vector<TenantInfo> tenant_infos() const;

  /// Requests expected from the modulated arrival process over
  /// [0, horizon] — qps x mean profile factor x horizon. Use it to budget
  /// `num_requests` so a trace covers a wanted timespan (and vice versa).
  /// Requires a non-static arrival kind.
  double expected_requests(Seconds horizon) const;

  /// Human-readable one-liner for reports.
  std::string to_string() const;
};

/// Generate the merged tenant-tagged trace of `scenario`.
///
/// Deterministic: the same (scenario, seed) yields the identical trace.
/// Arrivals come from the baseline renewal process run at the profile's
/// peak rate, thinned by factor(t) / peak_factor; each accepted arrival is
/// assigned a tenant by share, and its lengths are drawn from that tenant's
/// TraceSpec using a per-tenant forked RNG stream, so one tenant's length
/// sequence does not depend on the other tenants' sampling.
Trace generate_scenario_trace(const Scenario& scenario, std::uint64_t seed);

}  // namespace vidur
