// Named-scenario registry: built-in serving scenarios plus programmatic
// registration, so benches, examples and downstream users can reference
// reproducible workload compositions by name.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "scenario/scenario.h"

namespace vidur {

class ScenarioRegistry {
 public:
  /// The process-wide registry, pre-populated with the built-in scenarios.
  static ScenarioRegistry& instance();

  /// Register a scenario. Throws vidur::Error when the scenario is invalid
  /// or the name is already taken.
  void add(Scenario scenario);

  bool contains(const std::string& name) const;
  /// Throws vidur::Error for unknown names. The reference stays valid
  /// across later add() calls (deque storage never relocates elements).
  const Scenario& get(const std::string& name) const;
  /// Registered names, in registration order (built-ins first).
  std::vector<std::string> names() const;

 private:
  std::deque<Scenario> scenarios_;
};

/// Convenience: ScenarioRegistry::instance().get(name).
const Scenario& scenario_by_name(const std::string& name);

/// Names of the built-in scenarios, in registration order.
const std::vector<std::string>& builtin_scenario_names();

}  // namespace vidur
