#include "scenario/rate_profile.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace vidur {

namespace {

const std::vector<std::pair<RateProfileKind, std::string>>& kind_names() {
  static const std::vector<std::pair<RateProfileKind, std::string>> table = {
      {RateProfileKind::kConstant, "constant"},
      {RateProfileKind::kDiurnal, "diurnal"},
      {RateProfileKind::kRamp, "ramp"},
      {RateProfileKind::kSpike, "spike"},
      {RateProfileKind::kPiecewise, "piecewise"},
  };
  return table;
}

}  // namespace

const std::string& rate_profile_kind_name(RateProfileKind kind) {
  for (const auto& [k, n] : kind_names())
    if (k == kind) return n;
  throw Error("unhandled RateProfileKind");
}

RateProfileKind rate_profile_kind_from_name(const std::string& name) {
  for (const auto& [k, n] : kind_names())
    if (n == name) return k;
  throw Error("unknown rate profile kind: " + name);
}

RateProfile RateProfile::constant() { return RateProfile{}; }

RateProfile RateProfile::diurnal(Seconds period, double low, double high) {
  RateProfile p;
  p.kind_ = RateProfileKind::kDiurnal;
  p.a_ = low;
  p.b_ = high;
  p.t0_ = period;
  p.validate();
  return p;
}

RateProfile RateProfile::ramp(double start, double end, Seconds duration) {
  RateProfile p;
  p.kind_ = RateProfileKind::kRamp;
  p.a_ = start;
  p.b_ = end;
  p.t0_ = duration;
  p.validate();
  return p;
}

RateProfile RateProfile::spike(double baseline, double spike,
                               Seconds spike_start, Seconds spike_duration) {
  RateProfile p;
  p.kind_ = RateProfileKind::kSpike;
  p.a_ = baseline;
  p.b_ = spike;
  p.t0_ = spike_start;
  p.t1_ = spike_duration;
  p.validate();
  return p;
}

RateProfile RateProfile::piecewise(std::vector<RateStep> steps) {
  RateProfile p;
  p.kind_ = RateProfileKind::kPiecewise;
  p.steps_ = std::move(steps);
  p.validate();
  return p;
}

double RateProfile::factor_at(Seconds t) const {
  VIDUR_CHECK_MSG(t >= 0, "rate profile queried at negative time");
  switch (kind_) {
    case RateProfileKind::kConstant:
      return 1.0;
    case RateProfileKind::kDiurnal: {
      const double mid = (a_ + b_) / 2.0;
      const double amplitude = (b_ - a_) / 2.0;
      return mid +
             amplitude * std::sin(2.0 * std::numbers::pi * t / t0_);
    }
    case RateProfileKind::kRamp:
      if (t >= t0_) return b_;
      return a_ + (b_ - a_) * t / t0_;
    case RateProfileKind::kSpike:
      return t >= t0_ && t < t0_ + t1_ ? b_ : a_;
    case RateProfileKind::kPiecewise: {
      // Last step whose start_time <= t; before the first step the schedule
      // has not begun, but validate() pins the first step to t=0.
      double factor = steps_.front().factor;
      for (const RateStep& s : steps_) {
        if (s.start_time > t) break;
        factor = s.factor;
      }
      return factor;
    }
  }
  throw Error("unhandled RateProfileKind");
}

double RateProfile::peak_factor() const {
  switch (kind_) {
    case RateProfileKind::kConstant:
      return 1.0;
    case RateProfileKind::kDiurnal:
    case RateProfileKind::kRamp:
    case RateProfileKind::kSpike:
      return std::max(a_, b_);
    case RateProfileKind::kPiecewise: {
      double peak = 0.0;
      for (const RateStep& s : steps_) peak = std::max(peak, s.factor);
      return peak;
    }
  }
  throw Error("unhandled RateProfileKind");
}

double RateProfile::mean_factor(Seconds horizon) const {
  VIDUR_CHECK(horizon > 0);
  // Trapezoidal average; exact enough for budgeting and kind-agnostic.
  constexpr int kSteps = 4096;
  double sum = 0.0;
  for (int i = 0; i <= kSteps; ++i) {
    const double f = factor_at(horizon * i / kSteps);
    sum += (i == 0 || i == kSteps) ? f / 2.0 : f;
  }
  return sum / kSteps;
}

void RateProfile::validate() const {
  const auto check_factor = [](double f, const char* what) {
    VIDUR_CHECK_MSG(std::isfinite(f) && f >= 0,
                    "rate profile " << what
                                    << " must be finite and >= 0, got " << f);
  };
  switch (kind_) {
    case RateProfileKind::kConstant:
      return;
    case RateProfileKind::kDiurnal:
      check_factor(a_, "low factor");
      check_factor(b_, "high factor");
      VIDUR_CHECK_MSG(a_ <= b_, "diurnal low factor exceeds high factor");
      VIDUR_CHECK_MSG(std::isfinite(t0_) && t0_ > 0,
                      "diurnal period must be > 0");
      return;
    case RateProfileKind::kRamp:
      check_factor(a_, "start factor");
      check_factor(b_, "end factor");
      VIDUR_CHECK_MSG(std::isfinite(t0_) && t0_ > 0,
                      "ramp duration must be > 0");
      return;
    case RateProfileKind::kSpike:
      check_factor(a_, "baseline factor");
      check_factor(b_, "spike factor");
      VIDUR_CHECK_MSG(std::isfinite(t0_) && t0_ >= 0,
                      "spike start must be >= 0");
      VIDUR_CHECK_MSG(std::isfinite(t1_) && t1_ > 0,
                      "spike duration must be > 0");
      return;
    case RateProfileKind::kPiecewise: {
      VIDUR_CHECK_MSG(!steps_.empty(), "piecewise profile needs steps");
      VIDUR_CHECK_MSG(steps_.front().start_time == 0.0,
                      "piecewise schedule must start at t=0");
      for (std::size_t i = 0; i < steps_.size(); ++i) {
        check_factor(steps_[i].factor, "step factor");
        if (i > 0)
          VIDUR_CHECK_MSG(steps_[i].start_time > steps_[i - 1].start_time,
                          "piecewise step times must strictly increase");
      }
      VIDUR_CHECK_MSG(peak_factor() > 0,
                      "piecewise profile is zero everywhere");
      return;
    }
  }
  throw Error("unhandled RateProfileKind");
}

std::string RateProfile::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case RateProfileKind::kConstant:
      os << "constant";
      break;
    case RateProfileKind::kDiurnal:
      os << "diurnal(period=" << t0_ << "s, " << a_ << ".." << b_ << "x)";
      break;
    case RateProfileKind::kRamp:
      os << "ramp(" << a_ << "x -> " << b_ << "x over " << t0_ << "s)";
      break;
    case RateProfileKind::kSpike:
      os << "spike(" << a_ << "x, burst " << b_ << "x @ " << t0_ << "s for "
         << t1_ << "s)";
      break;
    case RateProfileKind::kPiecewise:
      os << "piecewise(" << steps_.size() << " steps, peak " << peak_factor()
         << "x)";
      break;
  }
  return os.str();
}

}  // namespace vidur
