// Model parallelism configuration: tensor-parallel degree, pipeline-parallel
// degree and replica count, plus the derived sharding arithmetic that the
// profiler, memory planner and execution predictor all share.
#pragma once

#include "common/check.h"
#include "common/types.h"
#include "model/model_spec.h"

namespace vidur {

struct ParallelConfig {
  int tensor_parallel = 1;    ///< TP degree (shards every layer)
  int pipeline_parallel = 1;  ///< PP degree (splits layers into stages)
  int num_replicas = 1;       ///< independent model replicas

  int gpus_per_replica() const { return tensor_parallel * pipeline_parallel; }
  int total_gpus() const { return gpus_per_replica() * num_replicas; }

  void validate() const {
    VIDUR_CHECK(tensor_parallel >= 1);
    VIDUR_CHECK(pipeline_parallel >= 1);
    VIDUR_CHECK(num_replicas >= 1);
  }

  /// Layers resident on one pipeline stage (model layers split evenly; the
  /// last stage absorbs the remainder).
  int layers_per_stage(const ModelSpec& model, StageId stage) const {
    VIDUR_CHECK(stage >= 0 && stage < pipeline_parallel);
    const int base = model.num_layers / pipeline_parallel;
    const int rem = model.num_layers % pipeline_parallel;
    return base + (stage == pipeline_parallel - 1 ? rem : 0);
  }

  bool operator==(const ParallelConfig&) const = default;
};

}  // namespace vidur
