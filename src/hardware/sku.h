// GPU SKU and node descriptions. Numbers follow the published datasheets for
// the two SKUs evaluated in the paper (A100 80GB, H100 80GB) and
// Azure-equivalent rental pricing, which Vidur-Search uses for its
// QPS-per-dollar objective.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace vidur {

/// A single GPU device type.
struct SkuSpec {
  std::string name;

  double peak_fp16_tflops = 0.0;    ///< dense fp16 tensor-core peak
  double hbm_bandwidth_gbps = 0.0;  ///< GB/s
  ByteCount memory_bytes = 0;       ///< device memory capacity
  double nvlink_bandwidth_gbps = 0.0;  ///< per-direction link bandwidth, GB/s
  double pcie_bandwidth_gbps = 0.0;    ///< fallback interconnect, GB/s
  double cost_per_hour = 0.0;          ///< USD per GPU-hour
  double idle_watts = 0.0;             ///< device draw when idle
  double peak_watts = 0.0;             ///< TDP (draw at full utilization)

  double peak_flops() const { return peak_fp16_tflops * 1e12; }
  double hbm_bytes_per_sec() const { return hbm_bandwidth_gbps * 1e9; }
};

/// A node: several GPUs with pairwise NVLink (the paper's Azure VMs have
/// 4 GPUs with *pairwise* NVLink, so collectives spanning more than one
/// NVLink pair take a topology penalty).
struct NodeSpec {
  SkuSpec sku;
  int gpus_per_node = 4;
  int nvlink_pair_size = 2;  ///< GPUs fully connected by NVLink
};

/// Built-in SKU registry. Recognized: "a100", "h100".
/// Throws vidur::Error for unknown names.
SkuSpec sku_by_name(const std::string& name);

/// All built-in SKU names.
const std::vector<std::string>& builtin_sku_names();

}  // namespace vidur
