#include "hardware/sku.h"

#include "common/check.h"

namespace vidur {

namespace {

SkuSpec make_a100() {
  return SkuSpec{.name = "a100",
                 .peak_fp16_tflops = 312.0,
                 .hbm_bandwidth_gbps = 2039.0,
                 .memory_bytes = 80LL * 1024 * 1024 * 1024,
                 .nvlink_bandwidth_gbps = 300.0,
                 .pcie_bandwidth_gbps = 32.0,
                 .cost_per_hour = 3.67,
                 .idle_watts = 80.0,
                 .peak_watts = 400.0};
}

SkuSpec make_h100() {
  return SkuSpec{.name = "h100",
                 .peak_fp16_tflops = 989.0,
                 .hbm_bandwidth_gbps = 3350.0,
                 .memory_bytes = 80LL * 1024 * 1024 * 1024,
                 .nvlink_bandwidth_gbps = 450.0,
                 .pcie_bandwidth_gbps = 64.0,
                 .cost_per_hour = 6.98,
                 .idle_watts = 100.0,
                 .peak_watts = 700.0};
}

}  // namespace

SkuSpec sku_by_name(const std::string& name) {
  if (name == "a100") return make_a100();
  if (name == "h100") return make_h100();
  throw Error("unknown SKU: " + name);
}

const std::vector<std::string>& builtin_sku_names() {
  static const std::vector<std::string> names = {"a100", "h100"};
  return names;
}

}  // namespace vidur
