#include "execution/stage_workload.h"

namespace vidur {

std::vector<OpInvocation> decompose_stage(const OpShapes& shapes,
                                          const ParallelConfig& parallel,
                                          const BatchSpec& batch,
                                          StageId stage, AttentionMode mode) {
  std::vector<OpInvocation> ops;
  decompose_stage_into(ops, shapes, parallel, batch, stage, mode);
  return ops;
}

void decompose_stage_into(std::vector<OpInvocation>& ops,
                          const OpShapes& shapes,
                          const ParallelConfig& parallel,
                          const BatchSpec& batch, StageId stage,
                          AttentionMode mode) {
  VIDUR_CHECK(stage >= 0 && stage < parallel.pipeline_parallel);
  VIDUR_CHECK(!batch.empty());

  const ModelSpec& model = shapes.model();
  const int layers = parallel.layers_per_stage(model, stage);
  const int tp = parallel.tensor_parallel;
  const TokenCount t = batch.total_q_tokens();
  VIDUR_CHECK(t > 0);

  ops.clear();
  ops.reserve(16 + (mode == AttentionMode::kPerRequest
                        ? batch.items.size()
                        : std::size_t{1}));

  auto token_op = [&](OpType op, int count) {
    OpInput in;
    in.tokens = t;
    ops.push_back({op, in, count});
  };

  const bool first_stage = stage == 0;
  const bool last_stage = stage == parallel.pipeline_parallel - 1;

  if (first_stage) token_op(OpType::kEmbedLookup, 1);

  // Per-layer token-level operators.
  token_op(OpType::kRmsNorm, 2 * layers);
  token_op(OpType::kAttnQkvProj, layers);
  token_op(OpType::kRotaryEmbed, layers);
  token_op(OpType::kKvCacheSave, layers);
  token_op(OpType::kAttnOutProj, layers);
  token_op(OpType::kMlpGateUpProj, layers);
  token_op(OpType::kActMul, layers);
  token_op(OpType::kMlpDownProj, layers);
  token_op(OpType::kResidualAdd, 2 * layers);

  // Sequence-level attention.
  if (mode == AttentionMode::kEquivalentPrefill) {
    const TokenCount eq = batch.prefill_equivalent_length();
    if (eq > 0) {
      OpInput in;
      in.q_tokens = eq;
      in.kv_tokens = eq;
      ops.push_back({OpType::kAttnPrefill, in, layers});
    }
  } else {
    for (const auto& item : batch.items) {
      if (!item.is_prefill) continue;
      OpInput in;
      in.q_tokens = item.q_tokens;
      in.kv_tokens = item.kv_context + item.q_tokens;
      ops.push_back({OpType::kAttnPrefill, in, layers});
    }
  }
  const int decodes = batch.num_decodes();
  if (decodes > 0) {
    OpInput in;
    in.kv_tokens = batch.total_decode_kv();
    in.batch_size = decodes;
    ops.push_back({OpType::kAttnDecode, in, layers});
  }

  // TP collectives: one all-reduce after attention and one after the MLP.
  if (tp > 1) {
    OpInput in;
    in.bytes = shapes.allreduce_bytes(t);
    in.world = tp;
    ops.push_back(
        {OpType::kAllReduce, in, OpShapes::kAllReducesPerLayer * layers});
  }

  if (last_stage) {
    const int sampled = batch.tokens_sampled();
    if (sampled > 0) {
      OpInput norm_in;
      norm_in.tokens = sampled;
      ops.push_back({OpType::kRmsNorm, norm_in, 1});
      OpInput head_in;
      head_in.tokens = sampled;
      ops.push_back({OpType::kLmHead, head_in, 1});
    }
  } else {
    // Synchronous pipeline: ship activations to the next stage.
    OpInput in;
    in.bytes = shapes.send_recv_bytes(t);
    ops.push_back({OpType::kSendRecv, in, 1});
  }
}

}  // namespace vidur
