// Timing backends for the event-driven simulator.
//
// The simulator core asks a backend two questions per iteration:
//   * how long does this (micro)batch take on pipeline stage s?
//   * how much non-overlapped CPU time does the serving framework add?
//
// Two implementations exist:
//   * ExecutionTimePredictor — Vidur proper: queries the runtime estimator
//     (trained on profiled data); deterministic.
//   * ReferenceExecutor — the stand-in for the paper's real testbed: queries
//     the ground-truth kernel models with per-invocation measurement-scale
//     jitter and a stochastic CPU overhead. Fidelity experiments run the
//     same scheduling stack over both backends and compare request metrics.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "estimator/runtime_estimator.h"
#include "execution/stage_workload.h"
#include "hardware/sku.h"

namespace vidur {

/// Serving-framework CPU overhead per scheduler iteration (non-overlapped
/// with GPU work). The paper attributes its higher 7B error to exactly this
/// component: it is a larger fraction of short iterations.
struct CpuOverheadModel {
  double base_seconds = 1.2e-3;
  double per_sequence_seconds = 4.0e-6;
  /// Lognormal jitter sigma applied by the reference executor. The predictor
  /// uses the distribution median (profiling records medians), so the real
  /// mean exceeds the prediction by exp(sigma^2/2).
  double jitter_sigma = 0.35;

  double median_seconds(int batch_size) const {
    return base_seconds + per_sequence_seconds * batch_size;
  }
};

/// Per-operator share of one stage's predicted execution time (the paper's
/// operator-level metrics, §5.2: used to identify heavy-duty operators).
struct OpTimeBreakdown {
  std::map<OpType, Seconds> per_op;
  Seconds total = 0.0;

  /// Operators sorted by descending time share.
  std::vector<std::pair<OpType, Seconds>> sorted() const;
};

/// One stage execution, split into the on-device compute portion and the
/// inter-stage activation send (zero on the last stage). Synchronous
/// pipeline scheduling serializes the two; asynchronous scheduling overlaps
/// the send with the stage's next micro-batch (paper §4.5 future work).
struct StageTiming {
  Seconds compute = 0.0;
  Seconds comm = 0.0;

  Seconds total() const { return compute + comm; }
};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// GPU time for `stage` to run one iteration of `batch`, split into
  /// compute and pipeline-send components.
  virtual StageTiming stage_timing(const BatchSpec& batch, StageId stage) = 0;

  /// stage_timing() with the batch's aggregates already computed (the
  /// simulator freezes them once per batch). Backends that only need the
  /// aggregates override this to skip re-walking the items.
  virtual StageTiming stage_timing(const BatchSpec& batch,
                                   const BatchAggregates& agg, StageId stage) {
    (void)agg;
    return stage_timing(batch, stage);
  }

  /// Convenience: compute + comm (the synchronous-pipeline stage time).
  Seconds stage_time(const BatchSpec& batch, StageId stage) {
    return stage_timing(batch, stage).total();
  }

  /// Non-overlapped CPU time charged once per replica-level iteration.
  virtual Seconds cpu_overhead(const BatchSpec& batch) = 0;

  /// Operator-level time attribution for one stage execution (paper §5.2).
  /// Noise-free: for stochastic backends the itemized total may differ from
  /// a stage_timing() draw, but the relative shares are exact.
  virtual OpTimeBreakdown stage_breakdown(const BatchSpec& batch,
                                          StageId stage) = 0;
};

/// Vidur's predictor: estimator-backed, deterministic.
///
/// stage_timing() is memoized on a batch signature: in equivalent-prefill
/// mode (the one the predictor uses), decompose_stage() depends on the
/// batch only through a handful of aggregates, so batches sharing the
/// signature are guaranteed the same timing — steady-state iterations skip
/// the whole per-op prediction loop. The KV aggregate is bucketed with the
/// estimator's own decode-KV quantization, so memoized results stay
/// bit-identical to unmemoized ones.
class ExecutionTimePredictor final : public ExecutionBackend {
 public:
  /// `estimator` must outlive this object (shared across simulations so the
  /// operation-wise lookup cache is reused).
  ExecutionTimePredictor(const RuntimeEstimator* estimator,
                         const ModelSpec& model,
                         const ParallelConfig& parallel,
                         CpuOverheadModel cpu = CpuOverheadModel());

  StageTiming stage_timing(const BatchSpec& batch, StageId stage) override;
  StageTiming stage_timing(const BatchSpec& batch, const BatchAggregates& agg,
                           StageId stage) override;
  Seconds cpu_overhead(const BatchSpec& batch) override;

  /// Operator-level decomposition of stage_timing (same numbers, itemized).
  OpTimeBreakdown stage_breakdown(const BatchSpec& batch,
                                  StageId stage) override;

  std::size_t timing_cache_hits() const { return timing_hits_; }
  std::size_t timing_cache_misses() const { return timing_misses_; }

 private:
  /// Everything decompose_stage() reads from a batch in equivalent-prefill
  /// mode (keep in sync with src/execution/stage_workload.cpp). The KV sum
  /// is stored pre-bucketed (see decode_kv_rounding).
  struct BatchSignature {
    std::int32_t stage = 0;
    std::int32_t decodes = 0;
    std::int32_t sampled = 0;
    TokenCount q_tokens = 0;
    TokenCount prefill_eq = 0;
    TokenCount decode_kv_bucket = 0;

    bool operator==(const BatchSignature&) const = default;
  };
  struct SignatureHash {
    std::size_t operator()(const BatchSignature& s) const;
  };

  StageTiming compute_stage_timing(const BatchSpec& batch, StageId stage);

  const RuntimeEstimator* estimator_;
  OpShapes shapes_;
  ParallelConfig parallel_;
  CpuOverheadModel cpu_;
  std::unordered_map<BatchSignature, StageTiming, SignatureHash> timing_memo_;
  std::vector<OpInvocation> op_scratch_;  ///< miss-path decomposition buffer
  std::size_t timing_hits_ = 0;
  std::size_t timing_misses_ = 0;
};

/// Ground-truth backend standing in for the real serving testbed.
class ReferenceExecutor final : public ExecutionBackend {
 public:
  ReferenceExecutor(NodeSpec node, const ModelSpec& model,
                    const ParallelConfig& parallel, std::uint64_t seed,
                    CpuOverheadModel cpu = CpuOverheadModel(),
                    double kernel_jitter_sigma = 0.015);

  StageTiming stage_timing(const BatchSpec& batch, StageId stage) override;
  Seconds cpu_overhead(const BatchSpec& batch) override;
  OpTimeBreakdown stage_breakdown(const BatchSpec& batch,
                                  StageId stage) override;

 private:
  NodeSpec node_;
  OpShapes shapes_;
  ParallelConfig parallel_;
  CpuOverheadModel cpu_;
  double kernel_jitter_sigma_;
  Rng rng_;
};

}  // namespace vidur
