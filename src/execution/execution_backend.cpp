#include "execution/execution_backend.h"

#include <algorithm>
#include <cmath>

#include "gpu/kernel_models.h"
#include "operators/ground_truth.h"

namespace vidur {

ExecutionTimePredictor::ExecutionTimePredictor(
    const RuntimeEstimator* estimator, const ModelSpec& model,
    const ParallelConfig& parallel, CpuOverheadModel cpu)
    : estimator_(estimator),
      shapes_(model, parallel.tensor_parallel),
      parallel_(parallel),
      cpu_(cpu) {
  VIDUR_CHECK(estimator != nullptr);
  parallel.validate();
}

std::size_t ExecutionTimePredictor::SignatureHash::operator()(
    const BatchSignature& s) const {
  // Mix the six fields through a splitmix-style finalizer chain.
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    return h ^ (h >> 33);
  };
  std::uint64_t h = static_cast<std::uint64_t>(s.stage);
  h = mix(h, static_cast<std::uint64_t>(s.decodes));
  h = mix(h, static_cast<std::uint64_t>(s.sampled));
  h = mix(h, static_cast<std::uint64_t>(s.q_tokens));
  h = mix(h, static_cast<std::uint64_t>(s.prefill_eq));
  h = mix(h, static_cast<std::uint64_t>(s.decode_kv_bucket));
  return static_cast<std::size_t>(h);
}

StageTiming ExecutionTimePredictor::stage_timing(const BatchSpec& batch,
                                                 StageId stage) {
  return stage_timing(batch, batch.aggregates(), stage);
}

StageTiming ExecutionTimePredictor::stage_timing(const BatchSpec& batch,
                                                 const BatchAggregates& agg,
                                                 StageId stage) {
  BatchSignature sig;
  sig.stage = stage;
  sig.decodes = agg.decodes;
  sig.sampled = agg.sampled;
  sig.q_tokens = agg.total_q;
  sig.prefill_eq = agg.prefill_equivalent_length();
  // Bucket exactly like the estimator quantizes decode KV: two batches in
  // the same bucket would produce identical predictions anyway, so the memo
  // is lossless while steady-state decode batches (whose KV sum creeps up
  // every iteration) keep hitting.
  sig.decode_kv_bucket = estimator_->quantize_decode_kv(agg.decode_kv);

  const auto it = timing_memo_.find(sig);
  if (it != timing_memo_.end()) {
    ++timing_hits_;
    return it->second;
  }
  ++timing_misses_;
  const StageTiming timing = compute_stage_timing(batch, stage);
  timing_memo_.emplace(sig, timing);
  return timing;
}

StageTiming ExecutionTimePredictor::compute_stage_timing(
    const BatchSpec& batch, StageId stage) {
  decompose_stage_into(op_scratch_, shapes_, parallel_, batch, stage,
                       AttentionMode::kEquivalentPrefill);
  StageTiming timing;
  for (const OpInvocation& inv : op_scratch_) {
    const int shard = op_class(inv.op) == OpClass::kCommunication
                          ? inv.input.world
                          : parallel_.tensor_parallel;
    const Seconds t = estimator_->predict(inv.op, shard, inv.input) * inv.count;
    if (inv.op == OpType::kSendRecv)
      timing.comm += t;
    else
      timing.compute += t;
  }
  return timing;
}

std::vector<std::pair<OpType, Seconds>> OpTimeBreakdown::sorted() const {
  std::vector<std::pair<OpType, Seconds>> out(per_op.begin(), per_op.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

OpTimeBreakdown ExecutionTimePredictor::stage_breakdown(const BatchSpec& batch,
                                                        StageId stage) {
  const auto ops = decompose_stage(shapes_, parallel_, batch, stage,
                                   AttentionMode::kEquivalentPrefill);
  OpTimeBreakdown breakdown;
  for (const OpInvocation& inv : ops) {
    const int shard = op_class(inv.op) == OpClass::kCommunication
                          ? inv.input.world
                          : parallel_.tensor_parallel;
    const Seconds t = estimator_->predict(inv.op, shard, inv.input) * inv.count;
    breakdown.per_op[inv.op] += t;
    breakdown.total += t;
  }
  return breakdown;
}

Seconds ExecutionTimePredictor::cpu_overhead(const BatchSpec& batch) {
  // Deterministic: the median overhead measured during profiling.
  return cpu_.median_seconds(batch.size());
}

ReferenceExecutor::ReferenceExecutor(NodeSpec node, const ModelSpec& model,
                                     const ParallelConfig& parallel,
                                     std::uint64_t seed, CpuOverheadModel cpu,
                                     double kernel_jitter_sigma)
    : node_(std::move(node)),
      shapes_(model, parallel.tensor_parallel),
      parallel_(parallel),
      cpu_(cpu),
      kernel_jitter_sigma_(kernel_jitter_sigma),
      rng_(seed) {
  parallel.validate();
}

StageTiming ReferenceExecutor::stage_timing(const BatchSpec& batch,
                                            StageId stage) {
  const auto ops = decompose_stage(shapes_, parallel_, batch, stage,
                                   AttentionMode::kPerRequest);
  StageTiming timing;
  // Per-request prefill segments execute as one fused varlen kernel per
  // layer (FlashAttention varlen), not as separate launches.
  std::vector<gpu::PrefillSegment> prefill_segments;
  int prefill_layers = 0;
  auto jittered = [this](double truth, int count) {
    // Sum of `count` independently jittered kernels: for small sigma the
    // sum's relative jitter shrinks by sqrt(count), so one draw suffices.
    const double sigma =
        kernel_jitter_sigma_ / std::sqrt(static_cast<double>(count));
    return truth * std::exp(sigma * rng_.normal());
  };
  for (const OpInvocation& inv : ops) {
    if (inv.op == OpType::kAttnPrefill) {
      prefill_segments.push_back(
          {inv.input.q_tokens, inv.input.kv_tokens});
      prefill_layers = inv.count;
      continue;
    }
    const double truth =
        ground_truth_op_time(node_, shapes_, inv.op, inv.input) * inv.count;
    if (inv.op == OpType::kSendRecv)
      timing.comm += jittered(truth, inv.count);
    else
      timing.compute += jittered(truth, inv.count);
  }
  if (!prefill_segments.empty()) {
    const double truth =
        gpu::attention_prefill_varlen_time(node_.sku, prefill_segments,
                                           shapes_.q_heads_per_gpu(),
                                           shapes_.model().head_dim()) *
        prefill_layers;
    timing.compute += jittered(truth, prefill_layers);
  }
  return timing;
}

Seconds ReferenceExecutor::cpu_overhead(const BatchSpec& batch) {
  // Lognormal around the median: the real framework's scheduling jitter.
  return cpu_.median_seconds(batch.size()) *
         std::exp(cpu_.jitter_sigma * rng_.normal());
}

OpTimeBreakdown ReferenceExecutor::stage_breakdown(const BatchSpec& batch,
                                                   StageId stage) {
  // Noise-free ground-truth attribution (does not advance the RNG stream, so
  // enabling operator metrics never perturbs a reference run's timings).
  const auto ops = decompose_stage(shapes_, parallel_, batch, stage,
                                   AttentionMode::kPerRequest);
  OpTimeBreakdown breakdown;
  std::vector<gpu::PrefillSegment> prefill_segments;
  int prefill_layers = 0;
  for (const OpInvocation& inv : ops) {
    if (inv.op == OpType::kAttnPrefill) {
      prefill_segments.push_back({inv.input.q_tokens, inv.input.kv_tokens});
      prefill_layers = inv.count;
      continue;
    }
    const Seconds t =
        ground_truth_op_time(node_, shapes_, inv.op, inv.input) * inv.count;
    breakdown.per_op[inv.op] += t;
    breakdown.total += t;
  }
  if (!prefill_segments.empty()) {
    const Seconds t =
        gpu::attention_prefill_varlen_time(node_.sku, prefill_segments,
                                           shapes_.q_heads_per_gpu(),
                                           shapes_.model().head_dim()) *
        prefill_layers;
    breakdown.per_op[OpType::kAttnPrefill] += t;
    breakdown.total += t;
  }
  return breakdown;
}

}  // namespace vidur
