// The unit a replica scheduler submits for execution: one iteration's batch,
// possibly mixing prefill chunks and decodes (continuous batching).
#pragma once

#include <vector>

#include "common/types.h"
#include "model/model_spec.h"

namespace vidur {

struct RequestState;

/// One request's contribution to an iteration.
struct BatchItem {
  RequestId request = -1;
  /// New tokens processed this iteration: the prompt-chunk size during
  /// prefill, 1 during decode.
  TokenCount q_tokens = 0;
  /// Tokens of this request already in the KV cache before this iteration.
  TokenCount kv_context = 0;
  /// True while the request is still processing its prompt.
  bool is_prefill = false;
  /// True when this iteration finishes the prompt (produces the 1st token).
  bool completes_prefill = false;
  /// Owning request (set by the scheduler when it forms the batch; spares
  /// the batch-end bookkeeping an id lookup per item). May be null in
  /// hand-built test batches that never reach on_batch_end.
  RequestState* state = nullptr;
};

/// Per-iteration aggregates of one batch, computed in a single pass over
/// the items (the individual BatchSpec accessors each re-walk the batch;
/// the hot paths — FLOP accounting, stage-timing memo keys, HBM accounting
/// — pull everything they need from one of these instead).
struct BatchAggregates {
  TokenCount total_q = 0;
  /// KV entries read by decode attention (context incl. current token).
  TokenCount decode_kv = 0;
  /// Sum over prefill items of q * (kv_context + q): the batched-prefill
  /// attention work (paper §4.3) and the context term of the FLOP count.
  double prefill_qkv = 0.0;
  int decodes = 0;
  int sampled = 0;

  /// Equivalent single-prefill length: ceil(sqrt(prefill_qkv)).
  TokenCount prefill_equivalent_length() const;
};

struct BatchSpec {
  std::vector<BatchItem> items;

  bool empty() const { return items.empty(); }
  int size() const { return static_cast<int>(items.size()); }

  /// All hot-path aggregates in one walk over the items.
  BatchAggregates aggregates() const;

  /// Total new tokens this iteration (drives all token-level operators).
  TokenCount total_q_tokens() const;
  /// Number of decode items.
  int num_decodes() const;
  /// Number of prefill-chunk items.
  int num_prefills() const;
  /// Total KV entries read by decode attention (sum of per-request context
  /// including the current token).
  TokenCount total_decode_kv() const;
  /// Items that produce an output token this iteration (decodes plus
  /// prompt-completing chunks) — the rows fed to the LM head.
  int tokens_sampled() const;
  /// Equivalent single-prefill length for batched prefill attention
  /// (paper §4.3): ceil(sqrt(sum_i q_i * kv_total_i)).
  TokenCount prefill_equivalent_length() const;
};

/// Model FLOPs consumed by one iteration of this batch (for MFU accounting).
FlopCount batch_flops(const ModelSpec& model, const BatchAggregates& agg);
FlopCount batch_flops(const ModelSpec& model, const BatchSpec& batch);

/// HBM bytes one GPU moves for one iteration of this batch: its weight
/// shard (read once per iteration) plus its share of KV-cache reads and
/// writes. Used for MBU (model bandwidth utilization) accounting.
ByteCount batch_hbm_bytes_per_gpu(const ModelSpec& model, int tensor_parallel,
                                  int pipeline_parallel,
                                  const BatchAggregates& agg);
ByteCount batch_hbm_bytes_per_gpu(const ModelSpec& model, int tensor_parallel,
                                  int pipeline_parallel,
                                  const BatchSpec& batch);

}  // namespace vidur
