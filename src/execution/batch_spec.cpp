#include "execution/batch_spec.h"

#include <algorithm>
#include <cmath>

namespace vidur {

TokenCount BatchSpec::total_q_tokens() const {
  TokenCount total = 0;
  for (const auto& item : items) total += item.q_tokens;
  return total;
}

int BatchSpec::num_decodes() const {
  int n = 0;
  for (const auto& item : items) n += item.is_prefill ? 0 : 1;
  return n;
}

int BatchSpec::num_prefills() const { return size() - num_decodes(); }

TokenCount BatchSpec::total_decode_kv() const {
  TokenCount total = 0;
  for (const auto& item : items)
    if (!item.is_prefill) total += item.kv_context + item.q_tokens;
  return total;
}

int BatchSpec::tokens_sampled() const {
  int n = 0;
  for (const auto& item : items)
    if (!item.is_prefill || item.completes_prefill) ++n;
  return n;
}

TokenCount BatchSpec::prefill_equivalent_length() const {
  double acc = 0.0;
  for (const auto& item : items) {
    if (!item.is_prefill) continue;
    const double kv_total =
        static_cast<double>(item.kv_context + item.q_tokens);
    acc += static_cast<double>(item.q_tokens) * kv_total;
  }
  if (acc <= 0.0) return 0;
  return static_cast<TokenCount>(std::ceil(std::sqrt(acc)));
}

FlopCount batch_flops(const ModelSpec& model, const BatchSpec& batch) {
  FlopCount total = 0.0;
  for (const auto& item : batch.items)
    total += model.flops(item.q_tokens, item.kv_context + item.q_tokens);
  return total;
}

ByteCount batch_hbm_bytes_per_gpu(const ModelSpec& model, int tensor_parallel,
                                  int pipeline_parallel,
                                  const BatchSpec& batch) {
  const int gpus = tensor_parallel * pipeline_parallel;
  // Weight shard streamed once per iteration.
  ByteCount bytes = model.weight_bytes() / gpus;
  // KV reads: decode attention touches every cached token; KV heads are
  // replicated when tp exceeds them (GQA), so the per-GPU share floors.
  const int kv_shard =
      std::max(1, std::min(tensor_parallel, model.num_kv_heads));
  const ByteCount kv_per_token =
      model.kv_bytes_per_token() / (kv_shard * pipeline_parallel);
  bytes += batch.total_decode_kv() * kv_per_token;
  // KV writes for the new tokens.
  bytes += batch.total_q_tokens() * kv_per_token;
  return bytes;
}

}  // namespace vidur
