#include "execution/batch_spec.h"

#include <algorithm>
#include <cmath>

namespace vidur {

TokenCount BatchAggregates::prefill_equivalent_length() const {
  if (prefill_qkv <= 0.0) return 0;
  return static_cast<TokenCount>(std::ceil(std::sqrt(prefill_qkv)));
}

BatchAggregates BatchSpec::aggregates() const {
  BatchAggregates agg;
  for (const auto& item : items) {
    agg.total_q += item.q_tokens;
    if (item.is_prefill) {
      agg.prefill_qkv +=
          static_cast<double>(item.q_tokens) *
          static_cast<double>(item.kv_context + item.q_tokens);
      if (item.completes_prefill) ++agg.sampled;
    } else {
      ++agg.decodes;
      agg.decode_kv += item.kv_context + item.q_tokens;
      ++agg.sampled;
    }
  }
  return agg;
}

TokenCount BatchSpec::total_q_tokens() const {
  TokenCount total = 0;
  for (const auto& item : items) total += item.q_tokens;
  return total;
}

int BatchSpec::num_decodes() const {
  int n = 0;
  for (const auto& item : items) n += item.is_prefill ? 0 : 1;
  return n;
}

int BatchSpec::num_prefills() const { return size() - num_decodes(); }

TokenCount BatchSpec::total_decode_kv() const {
  TokenCount total = 0;
  for (const auto& item : items)
    if (!item.is_prefill) total += item.kv_context + item.q_tokens;
  return total;
}

int BatchSpec::tokens_sampled() const {
  int n = 0;
  for (const auto& item : items)
    if (!item.is_prefill || item.completes_prefill) ++n;
  return n;
}

TokenCount BatchSpec::prefill_equivalent_length() const {
  double acc = 0.0;
  for (const auto& item : items) {
    if (!item.is_prefill) continue;
    const double kv_total =
        static_cast<double>(item.kv_context + item.q_tokens);
    acc += static_cast<double>(item.q_tokens) * kv_total;
  }
  if (acc <= 0.0) return 0;
  return static_cast<TokenCount>(std::ceil(std::sqrt(acc)));
}

FlopCount batch_flops(const ModelSpec& model, const BatchAggregates& agg) {
  // flops(t, c) is affine in t and t*c, so the batch sum collapses to the
  // aggregates: sum_i flops(q_i, kv_i) = per_token * total_q
  //   + per_token_context * (prefill q*kv work + decode KV reads).
  return model.flops_per_token() * static_cast<double>(agg.total_q) +
         model.flops_per_token_context() *
             (agg.prefill_qkv + static_cast<double>(agg.decode_kv));
}

FlopCount batch_flops(const ModelSpec& model, const BatchSpec& batch) {
  return batch_flops(model, batch.aggregates());
}

ByteCount batch_hbm_bytes_per_gpu(const ModelSpec& model, int tensor_parallel,
                                  int pipeline_parallel,
                                  const BatchAggregates& agg) {
  const int gpus = tensor_parallel * pipeline_parallel;
  // Weight shard streamed once per iteration.
  ByteCount bytes = model.weight_bytes() / gpus;
  // KV reads: decode attention touches every cached token; KV heads are
  // replicated when tp exceeds them (GQA), so the per-GPU share floors.
  const int kv_shard =
      std::max(1, std::min(tensor_parallel, model.num_kv_heads));
  const ByteCount kv_per_token =
      model.kv_bytes_per_token() / (kv_shard * pipeline_parallel);
  bytes += agg.decode_kv * kv_per_token;
  // KV writes for the new tokens.
  bytes += agg.total_q * kv_per_token;
  return bytes;
}

ByteCount batch_hbm_bytes_per_gpu(const ModelSpec& model, int tensor_parallel,
                                  int pipeline_parallel,
                                  const BatchSpec& batch) {
  return batch_hbm_bytes_per_gpu(model, tensor_parallel, pipeline_parallel,
                                 batch.aggregates());
}

}  // namespace vidur
