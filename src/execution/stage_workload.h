// Decomposition of a (micro)batch into per-stage operator invocations.
//
// Both execution backends (runtime-estimator predictions and the
// ground-truth reference executor) walk the same invocation list, so the
// structure of an iteration — which operators run, how many times, with
// which input sizes — is shared; only the per-operator timing source
// differs. The one structural difference is batched prefill attention:
// the simulator uses the paper's single-equivalent-prefill approximation,
// the reference executes each request's attention individually.
#pragma once

#include <vector>

#include "execution/batch_spec.h"
#include "hardware/parallel_config.h"
#include "operators/op_shapes.h"
#include "operators/op_type.h"

namespace vidur {

struct OpInvocation {
  OpType op;
  OpInput input;
  int count = 1;  ///< consecutive identical invocations (e.g. once per layer)
};

enum class AttentionMode {
  kEquivalentPrefill,  ///< simulator: one sqrt(sum q_i*kv_i) prefill kernel
  kPerRequest,         ///< reference: one kernel per prefill item
};

/// Operator invocations executed by `stage` of a replica for one iteration
/// of `batch`. Includes TP collectives and (for non-final stages) the
/// pipeline send of output activations.
///
/// In kEquivalentPrefill mode the output is a function of the batch's
/// aggregates only (total q tokens, prefill-equivalent length, decode
/// count, decode-KV total, tokens sampled) — ExecutionTimePredictor's
/// stage-timing memo keys on exactly these; extend its BatchSignature if a
/// new per-batch input is added here.
std::vector<OpInvocation> decompose_stage(const OpShapes& shapes,
                                          const ParallelConfig& parallel,
                                          const BatchSpec& batch,
                                          StageId stage, AttentionMode mode);

/// decompose_stage() into caller-owned storage (cleared first), so hot
/// callers can reuse one buffer across invocations.
void decompose_stage_into(std::vector<OpInvocation>& ops,
                          const OpShapes& shapes,
                          const ParallelConfig& parallel,
                          const BatchSpec& batch, StageId stage,
                          AttentionMode mode);

}  // namespace vidur
