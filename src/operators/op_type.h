// Operator taxonomy (paper §4.3, "Operator Triaging").
//
// Every LLM in the supported family decomposes into this small set of
// operators. Each is placed in one of three buckets that determine both its
// profiling grid and its runtime-prediction features:
//   * token-level     — runtime depends only on the number of tokens in the
//                       current iteration (GEMMs, norms, activations);
//   * sequence-level  — runtime also depends on per-request context lengths
//                       (attention prefill/decode);
//   * communication   — runtime depends only on bytes moved and topology.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace vidur {

enum class OpType {
  // Token-level GEMMs.
  kAttnQkvProj,
  kAttnOutProj,
  kMlpGateUpProj,
  kMlpDownProj,
  kLmHead,
  // Token-level pointwise / reduction kernels.
  kRmsNorm,
  kActMul,
  kResidualAdd,
  kRotaryEmbed,
  kKvCacheSave,
  kEmbedLookup,
  // Sequence-level attention kernels.
  kAttnPrefill,
  kAttnDecode,
  // Communication collectives.
  kAllReduce,
  kSendRecv,
};

enum class OpClass { kTokenLevel, kSequenceLevel, kCommunication };

/// Bucket for an operator (see paper §4.3). Inline: queried per operator
/// invocation on the prediction hot path. Exhaustive on purpose — a new
/// OpType must pick its bucket here (-Wswitch flags the omission).
constexpr OpClass op_class(OpType op) {
  switch (op) {
    case OpType::kAttnQkvProj:
    case OpType::kAttnOutProj:
    case OpType::kMlpGateUpProj:
    case OpType::kMlpDownProj:
    case OpType::kLmHead:
    case OpType::kRmsNorm:
    case OpType::kActMul:
    case OpType::kResidualAdd:
    case OpType::kRotaryEmbed:
    case OpType::kKvCacheSave:
    case OpType::kEmbedLookup:
      return OpClass::kTokenLevel;
    case OpType::kAttnPrefill:
    case OpType::kAttnDecode:
      return OpClass::kSequenceLevel;
    case OpType::kAllReduce:
    case OpType::kSendRecv:
      return OpClass::kCommunication;
  }
  throw Error("unhandled OpType");
}

/// True for the GEMM-shaped token-level operators.
bool is_gemm(OpType op);

/// Stable human-readable name, e.g. "attn_qkv_proj".
const std::string& op_name(OpType op);

/// Inverse of op_name. Throws vidur::Error on unknown names.
OpType op_from_name(const std::string& name);

/// All operator types, in declaration order.
const std::vector<OpType>& all_op_types();

/// Input-size descriptor for one operator invocation. Which fields are
/// meaningful depends on the operator class:
///   token-level:    tokens
///   attn prefill:   q_tokens, kv_tokens (kv >= q; kv > q under chunking);
///                   the feature vector adds the engineered product q*kv
///   attn decode:    kv_tokens (batch total), batch_size
///   communication:  bytes, world
struct OpInput {
  long tokens = 0;
  long q_tokens = 0;
  long kv_tokens = 0;
  int batch_size = 0;
  long bytes = 0;
  int world = 1;

  /// Feature vector used by the runtime estimator for this op class.
  std::vector<double> features(OpType op) const;

  /// The first two features as raw integers, allocation-free (the cache-key
  /// hot path; engineered third features are derived from these two, so the
  /// pair uniquely identifies the input within an op class).
  std::pair<long, long> key_features(OpType op) const;
};

}  // namespace vidur
