#include "operators/op_type.h"

#include <unordered_map>

#include "common/check.h"

namespace vidur {

bool is_gemm(OpType op) {
  switch (op) {
    case OpType::kAttnQkvProj:
    case OpType::kAttnOutProj:
    case OpType::kMlpGateUpProj:
    case OpType::kMlpDownProj:
    case OpType::kLmHead:
      return true;
    default:
      return false;
  }
}

namespace {

const std::vector<std::pair<OpType, std::string>>& op_names() {
  static const std::vector<std::pair<OpType, std::string>> names = {
      {OpType::kAttnQkvProj, "attn_qkv_proj"},
      {OpType::kAttnOutProj, "attn_out_proj"},
      {OpType::kMlpGateUpProj, "mlp_gate_up_proj"},
      {OpType::kMlpDownProj, "mlp_down_proj"},
      {OpType::kLmHead, "lm_head"},
      {OpType::kRmsNorm, "rms_norm"},
      {OpType::kActMul, "act_mul"},
      {OpType::kResidualAdd, "residual_add"},
      {OpType::kRotaryEmbed, "rotary_embed"},
      {OpType::kKvCacheSave, "kv_cache_save"},
      {OpType::kEmbedLookup, "embed_lookup"},
      {OpType::kAttnPrefill, "attn_prefill"},
      {OpType::kAttnDecode, "attn_decode"},
      {OpType::kAllReduce, "all_reduce"},
      {OpType::kSendRecv, "send_recv"},
  };
  return names;
}

}  // namespace

const std::string& op_name(OpType op) {
  for (const auto& [type, name] : op_names())
    if (type == op) return name;
  throw Error("unhandled OpType");
}

OpType op_from_name(const std::string& name) {
  for (const auto& [type, n] : op_names())
    if (n == name) return type;
  throw Error("unknown operator name: " + name);
}

const std::vector<OpType>& all_op_types() {
  static const std::vector<OpType> types = [] {
    std::vector<OpType> out;
    for (const auto& [type, name] : op_names()) out.push_back(type);
    return out;
  }();
  return types;
}

std::pair<long, long> OpInput::key_features(OpType op) const {
  // Keep in lockstep with features(): same first two components, minus the
  // engineered products (derived, so they add nothing to key uniqueness)
  // and without materializing a vector.
  switch (op_class(op)) {
    case OpClass::kTokenLevel:
      return {tokens, 0};
    case OpClass::kSequenceLevel:
      if (op == OpType::kAttnPrefill) return {q_tokens, kv_tokens};
      return {kv_tokens, static_cast<long>(batch_size)};
    case OpClass::kCommunication:
      return {bytes, 0};
  }
  throw Error("unhandled OpClass");
}

std::vector<double> OpInput::features(OpType op) const {
  switch (op_class(op)) {
    case OpClass::kTokenLevel:
      return {static_cast<double>(tokens)};
    case OpClass::kSequenceLevel:
      if (op == OpType::kAttnPrefill) {
        // The attention-work product q*kv is supplied as an engineered
        // feature (domain knowledge, paper §4.4): it is the main runtime
        // determinant, so regression splits stay tight along it.
        return {static_cast<double>(q_tokens), static_cast<double>(kv_tokens),
                static_cast<double>(q_tokens) *
                    static_cast<double>(kv_tokens) * 1e-6};
      }
      return {static_cast<double>(kv_tokens), static_cast<double>(batch_size)};
    case OpClass::kCommunication:
      return {static_cast<double>(bytes)};
  }
  throw Error("unhandled OpClass");
}

}  // namespace vidur
