// Bridge from the operator taxonomy to the ground-truth GPU kernel models:
// evaluates the true runtime of one operator invocation on a given device.
// Only the profiler (sampling) and the reference executor ("real" system)
// call this; the simulator proper sees only estimator predictions.
#pragma once

#include "hardware/sku.h"
#include "operators/op_shapes.h"
#include "operators/op_type.h"

namespace vidur {

/// True runtime of `op` with input sizes `in` on `node`, for the model/TP
/// sharding described by `shapes`. Deterministic (no measurement noise).
double ground_truth_op_time(const NodeSpec& node, const OpShapes& shapes,
                            OpType op, const OpInput& in);

}  // namespace vidur
