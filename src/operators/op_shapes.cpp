#include "operators/op_shapes.h"

#include <algorithm>

namespace vidur {

OpShapes::OpShapes(const ModelSpec& model, int tp) : model_(model), tp_(tp) {
  model_.validate();
  VIDUR_CHECK_MSG(tp >= 1, "tensor parallel degree must be >= 1");
  VIDUR_CHECK_MSG(model.num_q_heads % tp == 0,
                  "tp=" << tp << " must divide q heads of " << model.name);
  VIDUR_CHECK_MSG(model.ffn_dim % tp == 0,
                  "tp=" << tp << " must divide ffn dim of " << model.name);
}

int OpShapes::kv_heads_per_gpu() const {
  // Megatron-style sharding replicates KV heads when tp > num_kv_heads.
  return std::max(1, model_.num_kv_heads / tp_);
}

GemmShape OpShapes::gemm_shape(OpType op, long tokens) const {
  VIDUR_CHECK(is_gemm(op));
  VIDUR_CHECK(tokens > 0);
  const long d = model_.embed_dim;
  const long f = model_.ffn_dim;
  const long v = model_.vocab_size;
  const long q_dim = static_cast<long>(q_heads_per_gpu()) * model_.head_dim();

  switch (op) {
    case OpType::kAttnQkvProj:
      // Column-parallel: fused Q, K, V projection shard.
      return {tokens, d, q_dim + 2 * kv_dim_per_gpu()};
    case OpType::kAttnOutProj:
      // Row-parallel: input is the local head slice.
      return {tokens, q_dim, d};
    case OpType::kMlpGateUpProj:
      // Column-parallel: fused gate+up (or up only for non-gated MLP).
      return {tokens, d, (model_.gated_mlp ? 2 : 1) * (f / tp_)};
    case OpType::kMlpDownProj:
      // Row-parallel.
      return {tokens, f / tp_, d};
    case OpType::kLmHead:
      // Vocab-parallel.
      return {tokens, d, (v + tp_ - 1) / tp_};
    default:
      throw Error("not a GEMM op: " + op_name(op));
  }
}

long OpShapes::elementwise_bytes(OpType op, long tokens) const {
  VIDUR_CHECK(op_class(op) == OpClass::kTokenLevel && !is_gemm(op));
  VIDUR_CHECK(tokens >= 0);
  const long d = model_.embed_dim;
  const long f_shard = model_.ffn_dim / tp_;
  const long q_dim = static_cast<long>(q_heads_per_gpu()) * model_.head_dim();

  switch (op) {
    case OpType::kRmsNorm:
      // read activations + write normalized output.
      return 2 * tokens * d * kBytesPerElement;
    case OpType::kActMul:
      // read gate + up, write product.
      return 3 * tokens * f_shard * kBytesPerElement;
    case OpType::kResidualAdd:
      // read both operands, write sum.
      return 3 * tokens * d * kBytesPerElement;
    case OpType::kRotaryEmbed:
      // read+write Q and K shards.
      return 2 * tokens * (q_dim + kv_dim_per_gpu()) * kBytesPerElement;
    case OpType::kKvCacheSave:
      // write K and V of the new tokens into the paged cache.
      return 2 * tokens * kv_dim_per_gpu() * kBytesPerElement;
    case OpType::kEmbedLookup:
      // gather embedding rows + write output.
      return 2 * tokens * d * kBytesPerElement;
    default:
      throw Error("not an elementwise op: " + op_name(op));
  }
}

long OpShapes::allreduce_bytes(long tokens) const {
  return tokens * static_cast<long>(model_.embed_dim) * kBytesPerElement;
}

long OpShapes::send_recv_bytes(long tokens) const {
  return tokens * static_cast<long>(model_.embed_dim) * kBytesPerElement;
}

}  // namespace vidur
