// Tensor shapes of each operator for a (model, tensor-parallel degree) pair.
//
// The paper's "Automatic Profiling for Parallelism Strategies" (§4.1): given
// the declarative model spec, the tensor sharding of every operator under
// any TP degree is derived analytically, so all parallelism variants can be
// profiled on a single GPU. This class is that derivation.
#pragma once

#include "common/check.h"
#include "common/types.h"
#include "model/model_spec.h"
#include "operators/op_type.h"

namespace vidur {

/// GEMM problem dimensions (row-major: out[m,n] = in[m,k] * w[k,n]).
struct GemmShape {
  long m = 0;
  long k = 0;
  long n = 0;
};

class OpShapes {
 public:
  /// `tp` must divide the head counts and ffn dim of `model`.
  OpShapes(const ModelSpec& model, int tp);

  const ModelSpec& model() const { return model_; }
  int tp() const { return tp_; }

  int q_heads_per_gpu() const { return model_.num_q_heads / tp_; }
  /// KV heads are replicated when tp exceeds the KV head count (GQA).
  int kv_heads_per_gpu() const;
  long kv_dim_per_gpu() const {
    return static_cast<long>(kv_heads_per_gpu()) * model_.head_dim();
  }

  /// GEMM dims for a token-level GEMM op processing `tokens` rows.
  /// Requires is_gemm(op).
  GemmShape gemm_shape(OpType op, long tokens) const;

  /// HBM bytes moved by a token-level pointwise op over `tokens` tokens.
  /// Requires a non-GEMM token-level op.
  long elementwise_bytes(OpType op, long tokens) const;

  /// Bytes all-reduced per TP sync point for `tokens` tokens (activations).
  long allreduce_bytes(long tokens) const;

  /// Bytes sent between adjacent pipeline stages for `tokens` tokens.
  long send_recv_bytes(long tokens) const;

  /// Number of TP all-reduces per transformer layer (attention + MLP).
  static constexpr int kAllReducesPerLayer = 2;

 private:
  ModelSpec model_;
  int tp_;
};

}  // namespace vidur
