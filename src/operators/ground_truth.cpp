#include "operators/ground_truth.h"

#include "gpu/kernel_models.h"

namespace vidur {

double ground_truth_op_time(const NodeSpec& node, const OpShapes& shapes,
                            OpType op, const OpInput& in) {
  const SkuSpec& sku = node.sku;
  switch (op_class(op)) {
    case OpClass::kTokenLevel: {
      if (is_gemm(op)) {
        const GemmShape g = shapes.gemm_shape(op, in.tokens);
        return gpu::gemm_time(sku, g.m, g.k, g.n);
      }
      return gpu::elementwise_time(sku,
                                   shapes.elementwise_bytes(op, in.tokens));
    }
    case OpClass::kSequenceLevel: {
      if (op == OpType::kAttnPrefill) {
        return gpu::attention_prefill_time(sku, in.q_tokens, in.kv_tokens,
                                           shapes.q_heads_per_gpu(),
                                           shapes.model().head_dim());
      }
      return gpu::attention_decode_time(sku, in.kv_tokens, in.batch_size,
                                        shapes.kv_heads_per_gpu(),
                                        shapes.model().head_dim());
    }
    case OpClass::kCommunication: {
      if (op == OpType::kAllReduce)
        return gpu::allreduce_time(node, in.bytes, in.world);
      return gpu::send_recv_time(node, in.bytes);
    }
  }
  throw Error("unhandled OpClass");
}

}  // namespace vidur
