#include "search/config_space.h"

namespace vidur {

std::vector<DeploymentConfig> SearchSpace::enumerate(
    const ModelSpec& model) const {
  std::vector<DeploymentConfig> out;
  for (const std::string& sku : skus) {
    for (int tp : tp_degrees) {
      if (model.num_q_heads % tp != 0 || model.ffn_dim % tp != 0) continue;
      for (int pp : pp_degrees) {
        if (model.num_layers % pp != 0) continue;
        const int gpus_per_replica = tp * pp;
        if (gpus_per_replica > max_total_gpus) continue;
        const int replicas = max_total_gpus / gpus_per_replica;
        for (SchedulerKind kind : schedulers) {
          const auto& chunks = kind == SchedulerKind::kSarathi
                                   ? sarathi_chunk_sizes
                                   : std::vector<TokenCount>{0};
          for (TokenCount chunk : chunks) {
            for (int bs : batch_sizes) {
              DeploymentConfig config;
              config.sku_name = sku;
              config.parallel = ParallelConfig{tp, pp, replicas};
              config.scheduler.kind = kind;
              // The paper divides the batch size across PP micro-batches.
              config.scheduler.max_batch_size = std::max(1, bs / pp);
              config.scheduler.max_tokens_per_iteration =
                  max_tokens_per_iteration;
              if (kind == SchedulerKind::kSarathi)
                config.scheduler.chunk_size = chunk;
              config.global_scheduler = global_scheduler;
              out.push_back(config);
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace vidur
