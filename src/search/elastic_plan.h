// Elastic capacity planning: static peak provisioning vs. an autoscaled
// fleet on the same scenario, at the same SLO target.
//
// Static provisioning must size for the scenario's peak — the fleet that
// keeps SLO attainment at the target during the worst traffic window runs,
// fully paid, through every trough. An autoscaler rides the RateProfile
// instead, so the comparison of interest is: for the same SLO target, what
// does each deployment mode cost in GPU-hours? plan_elastic_capacity()
// answers by sweeping static fleet sizes to find the smallest one meeting
// the target, then replaying the identical trace under the autoscaling
// policy with the same slot budget (plus optional burst headroom).
#pragma once

#include <string>

#include "cluster/autoscaler.h"
#include "core/session.h"
#include "scenario/scenario.h"

namespace vidur {

struct ElasticPlanOptions {
  /// Required cluster-wide SLO attainment (weighted across tenants).
  double slo_target = 0.95;
  /// Ceiling of the static fleet-size sweep.
  int max_replicas = 8;
  /// Extra replica slots the autoscaler may burst into beyond the static
  /// fleet size — catching up on a backlog after a cold start takes more
  /// instantaneous capacity than steady-state peak service does.
  int burst_slots = 2;
  std::uint64_t trace_seed = 42;
};

/// Cost/SLO summary of one deployment mode on the scenario.
struct ElasticPlanPoint {
  int fleet_size = 0;  ///< replica slots (static: all always on)
  double gpu_hours = 0.0;
  double cost_usd = 0.0;
  double slo_attainment = -1.0;  ///< aggregate, weighted across tenants
  double mean_active_replicas = 0.0;
  Seconds makespan = 0.0;
  int num_scale_ups = 0;
  int num_scale_downs = 0;
  /// Per-pool breakout (heterogeneous deployments; one entry per pool).
  std::vector<PoolScalingReport> pools;

  /// Summarize one simulation's scaling report + SLO attainment.
  static ElasticPlanPoint from_metrics(const SimulationMetrics& metrics);
};

struct ElasticPlanResult {
  /// Some static fleet within options.max_replicas met the SLO target.
  /// When false, static_peak holds the best-attaining fleet instead.
  bool static_feasible = false;
  ElasticPlanPoint static_peak;
  ElasticPlanPoint autoscaled;
  /// GPU-hour savings of the autoscaled fleet vs. static peak, percent.
  double cost_savings_pct = 0.0;
  int num_simulations = 0;

  std::string to_string() const;
};

/// Derive a predictive policy from an existing (typically reactive) tuning
/// plus the scenario's arrival shape. The per-replica capacity estimate
/// comes from a static sweep result: the scenario's peak arrival rate that
/// `static_fleet_size` always-on replicas absorbed at the SLO target —
/// which prices in the scenario's actual prefill/decode blend. `headroom`
/// is the safety margin on the predicted requirement.
AutoscalerConfig derive_predictive_policy(AutoscalerConfig base,
                                          const Scenario& scenario,
                                          int static_fleet_size,
                                          double headroom = 0.25);

/// Compare static peak provisioning against `autoscale` on `scenario`.
///
/// `base.parallel.num_replicas` is ignored (the sweep owns it); every run
/// plays the identical scenario trace. The scenario must carry at least
/// one SLO-enabled tenant (there is no target to plan against otherwise).
/// A predictive policy inherits forecast inputs from the scenario,
/// independently: baseline_qps when unset (<= 0), and the profile when
/// left at the constant default (a constant forecast predicts nothing).
/// The autoscaler's warm floor is capped at the static fleet size.
ElasticPlanResult plan_elastic_capacity(VidurSession& session,
                                        DeploymentConfig base,
                                        const Scenario& scenario,
                                        AutoscalerConfig autoscale,
                                        const ElasticPlanOptions& options);

/// Heterogeneous form: `pooled` carries named pools (mixed SKUs and/or
/// disaggregated roles), at least one of them autoscaled. Static peak pins
/// every pool at its slot ceiling with autoscaling disabled; the elastic
/// run plays the identical trace with the per-pool policies as configured.
/// options.max_replicas / burst_slots do not apply — each pool's slot
/// count is its own ceiling. The result carries per-pool breakouts in
/// both points.
ElasticPlanResult plan_elastic_capacity_pools(
    VidurSession& session, DeploymentConfig pooled, const Scenario& scenario,
    const ElasticPlanOptions& options);

}  // namespace vidur
