#include "search/capacity.h"

#include <algorithm>

#include "common/check.h"

namespace vidur {

namespace {

/// Fixed request lengths + unit-rate arrival offsets; probes at different
/// QPS share all randomness, so feasibility is monotone in QPS.
struct ProbeTrace {
  std::vector<Request> requests;      // lengths, ids; arrival unset
  std::vector<double> unit_arrivals;  // cumulative Exp(1) inter-arrivals

  Trace at_qps(double qps) const {
    Trace out = requests;
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i].arrival_time = unit_arrivals[i] / qps;
    return out;
  }

  Trace statically() const {
    Trace out = requests;
    for (auto& r : out) r.arrival_time = 0.0;
    return out;
  }
};

ProbeTrace make_probe_trace(const TraceSpec& workload, int num_requests,
                            std::uint64_t seed) {
  ProbeTrace probe;
  workload.validate();
  Rng length_rng(seed);
  Rng arrival_rng(seed ^ 0xabcdef0123456789ULL);
  double clock = 0.0;
  probe.requests.reserve(static_cast<std::size_t>(num_requests));
  probe.unit_arrivals.reserve(static_cast<std::size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    Request r = sample_request(workload, length_rng);
    r.id = i;
    probe.requests.push_back(r);
    clock += arrival_rng.exponential(1.0);
    probe.unit_arrivals.push_back(clock);
  }
  return probe;
}

}  // namespace

int CapacitySearchOptions::probe_requests(
    const DeploymentConfig& config) const {
  const long slots = static_cast<long>(config.scheduler.max_batch_size) *
                     config.parallel.num_replicas;
  // Cap the probe size: past ~2x the slot count, queue blow-up at overload
  // is already observable, and probe cost grows linearly with requests.
  const long scaled = std::min<long>(slots * requests_per_slot, 12000);
  return static_cast<int>(std::max<long>(num_requests, scaled));
}

bool probe_feasible(const SimulationMetrics& metrics, int num_requests,
                    const CapacitySearchOptions& options) {
  if (metrics.num_completed != static_cast<std::size_t>(num_requests))
    return false;
  return metrics.scheduling_delay.p99 < options.max_p99_scheduling_delay;
}

double offline_throughput_qps(VidurSession& session,
                              const DeploymentConfig& config,
                              const TraceSpec& workload,
                              const CapacitySearchOptions& options) {
  const int n = options.probe_requests(config);
  const ProbeTrace probe = make_probe_trace(workload, n, options.trace_seed);
  try {
    const SimulationMetrics offline =
        session.simulate(config, probe.statically());
    if (offline.num_completed != static_cast<std::size_t>(n)) return 0.0;
    return offline.throughput_qps;
  } catch (const Error&) {
    return 0.0;  // infeasible deployment (does not fit, etc.)
  }
}

CapacityResult find_capacity(VidurSession& session,
                             const DeploymentConfig& config,
                             const TraceSpec& workload,
                             const CapacitySearchOptions& options,
                             double offline_qps_hint) {
  CapacityResult result;
  const int n = options.probe_requests(config);
  const ProbeTrace probe = make_probe_trace(workload, n, options.trace_seed);

  // Initial guess from an offline run: serve everything at once and read the
  // service throughput off the makespan. This is an upper bound on capacity.
  double offline_qps = offline_qps_hint;
  if (offline_qps <= 0.0) {
    offline_qps = offline_throughput_qps(session, config, workload, options);
    ++result.num_probes;
    if (offline_qps <= 0.0) return result;
  }

  auto run_probe = [&](double qps) -> std::pair<bool, SimulationMetrics> {
    SimulationMetrics m;
    try {
      m = session.simulate(config, probe.at_qps(qps));
    } catch (const Error&) {
      return {false, std::move(m)};
    }
    ++result.num_probes;
    return {probe_feasible(m, n, options), std::move(m)};
  };

  // Bracket the capacity downward from the offline upper bound.
  double lo = 0.0, hi = offline_qps;
  SimulationMetrics lo_metrics;
  {
    double q = offline_qps * 0.95;
    bool found = false;
    for (int i = 0; i < options.max_bracket_steps; ++i) {
      auto [ok, m] = run_probe(q);
      if (ok) {
        lo = q;
        lo_metrics = std::move(m);
        found = true;
        break;
      }
      hi = q;
      q *= 0.6;
    }
    if (!found) return result;  // no sustainable rate found
  }

  // Refine by binary search.
  for (int i = 0; i < options.binary_search_iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    auto [ok, m] = run_probe(mid);
    if (ok) {
      lo = mid;
      lo_metrics = std::move(m);
    } else {
      hi = mid;
    }
  }

  result.feasible = true;
  result.capacity_qps = lo;
  result.metrics_at_capacity = std::move(lo_metrics);
  return result;
}

}  // namespace vidur
