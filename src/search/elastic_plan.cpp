#include "search/elastic_plan.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/table.h"

namespace vidur {

ElasticPlanPoint ElasticPlanPoint::from_metrics(
    const SimulationMetrics& metrics) {
  ElasticPlanPoint point;
  point.fleet_size = metrics.scaling.fleet_size;
  point.gpu_hours = metrics.scaling.gpu_hours;
  point.cost_usd = metrics.scaling.cost_usd;
  point.slo_attainment = metrics.aggregate_slo_attainment();
  point.mean_active_replicas = metrics.scaling.mean_active_replicas;
  point.makespan = metrics.makespan;
  point.num_scale_ups = metrics.scaling.num_scale_up_events;
  point.num_scale_downs = metrics.scaling.num_scale_down_events;
  point.pools = metrics.scaling.pools;
  return point;
}

std::string ElasticPlanResult::to_string() const {
  std::ostringstream os;
  ConsoleTable table({"mode", "slots", "mean active", "GPU-hours", "cost",
                      "SLO attainment"});
  const auto row = [&](const char* mode, const ElasticPlanPoint& p) {
    // Built with += because string concatenation via operator+ trips a
    // GCC 12 -Wrestrict false positive through the inlined insert path.
    std::string cost = "$";
    cost += fmt_double(p.cost_usd, 2);
    table.add_row({mode, std::to_string(p.fleet_size),
                   fmt_double(p.mean_active_replicas, 2),
                   fmt_double(p.gpu_hours, 4), std::move(cost),
                   fmt_percent(p.slo_attainment)});
  };
  row("static peak", static_peak);
  row("autoscaled", autoscaled);
  os << table.str();
  if (autoscaled.pools.size() > 1) {
    for (const PoolScalingReport& p : autoscaled.pools) {
      os << "  autoscaled pool " << p.name << " (" << p.sku << ", " << p.role
         << "): mean active " << fmt_double(p.mean_active_replicas, 2)
         << " of " << p.slots << ", " << fmt_double(p.gpu_hours, 4)
         << " GPU-hours ($" << fmt_double(p.cost_usd, 2) << ")\n";
    }
  }
  os << "autoscaled GPU-hour savings vs static peak: "
     << fmt_double(cost_savings_pct, 1) << "%\n";
  if (!static_feasible)
    os << "(no static fleet within the sweep met the SLO target; comparing "
          "against the best-attaining one)\n";
  return os.str();
}

AutoscalerConfig derive_predictive_policy(AutoscalerConfig base,
                                          const Scenario& scenario,
                                          int static_fleet_size,
                                          double headroom) {
  VIDUR_CHECK(static_fleet_size >= 1);
  base.kind = AutoscalerKind::kPredictive;
  base.headroom = headroom;
  base.min_replicas = std::min(base.min_replicas, static_fleet_size);
  base.profile = scenario.profile;
  base.baseline_qps = scenario.arrival.qps;
  base.replica_capacity_qps = scenario.arrival.qps *
                              scenario.profile.peak_factor() /
                              static_fleet_size;
  base.validate();
  return base;
}

ElasticPlanResult plan_elastic_capacity(VidurSession& session,
                                        DeploymentConfig base,
                                        const Scenario& scenario,
                                        AutoscalerConfig autoscale,
                                        const ElasticPlanOptions& options) {
  VIDUR_CHECK_MSG(autoscale.enabled(),
                  "plan_elastic_capacity needs an autoscaling policy");
  VIDUR_CHECK(options.max_replicas >= 1 && options.burst_slots >= 0);
  VIDUR_CHECK(options.slo_target > 0 && options.slo_target <= 1);
  scenario.validate();
  bool has_slo = false;
  for (const TenantSpec& t : scenario.tenants) has_slo |= t.slo.enabled();
  VIDUR_CHECK_MSG(has_slo,
                  "plan_elastic_capacity: scenario '"
                      << scenario.name
                      << "' has no SLO-carrying tenant to plan against");

  const Trace trace = generate_scenario_trace(scenario, options.trace_seed);
  const std::vector<TenantInfo> tenants = scenario.tenant_infos();

  ElasticPlanResult result;

  // ---- static sweep: smallest always-on fleet meeting the target ----
  int static_n = 1;
  double best_attainment = -1.0;
  for (int n = 1; n <= options.max_replicas; ++n) {
    DeploymentConfig config = base;
    config.autoscale = AutoscalerConfig{};
    config.parallel.num_replicas = n;
    const SimulationMetrics metrics = session.simulate(config, trace, tenants);
    ++result.num_simulations;
    const double attainment = metrics.aggregate_slo_attainment();
    if (attainment > best_attainment) {
      best_attainment = attainment;
      static_n = n;
      result.static_peak = ElasticPlanPoint::from_metrics(metrics);
    }
    if (attainment >= options.slo_target) {
      result.static_feasible = true;
      static_n = n;
      result.static_peak = ElasticPlanPoint::from_metrics(metrics);
      break;
    }
  }

  // ---- the same trace under the autoscaler, same slot budget ----
  // Predictive policies inherit forecast inputs from the scenario
  // independently: the baseline rate when unset, the profile when left at
  // the (useless for prediction) constant default.
  if (autoscale.kind == AutoscalerKind::kPredictive) {
    if (autoscale.baseline_qps <= 0)
      autoscale.baseline_qps = scenario.arrival.qps;
    if (autoscale.profile.kind() == RateProfileKind::kConstant)
      autoscale.profile = scenario.profile;
  }
  // A warm floor above the static fleet size can never pay off: static
  // peak provisioning already covers the worst window with that many
  // replicas always on.
  autoscale.min_replicas = std::min(autoscale.min_replicas, static_n);
  if (autoscale.initial_replicas > 0)
    autoscale.initial_replicas =
        std::min(autoscale.initial_replicas, static_n);
  DeploymentConfig elastic = base;
  elastic.parallel.num_replicas = static_n + options.burst_slots;
  elastic.autoscale = std::move(autoscale);
  const SimulationMetrics metrics =
      session.simulate(elastic, trace, tenants);
  ++result.num_simulations;
  result.autoscaled = ElasticPlanPoint::from_metrics(metrics);

  if (result.static_peak.gpu_hours > 0)
    result.cost_savings_pct =
        (result.static_peak.gpu_hours - result.autoscaled.gpu_hours) /
        result.static_peak.gpu_hours * 100.0;
  return result;
}

ElasticPlanResult plan_elastic_capacity_pools(
    VidurSession& session, DeploymentConfig pooled, const Scenario& scenario,
    const ElasticPlanOptions& options) {
  VIDUR_CHECK_MSG(!pooled.pools.empty(),
                  "plan_elastic_capacity_pools needs a pool deployment");
  validate_pools(pooled.pools);
  VIDUR_CHECK_MSG(any_pool_autoscaled(pooled.pools),
                  "plan_elastic_capacity_pools: no pool carries an "
                  "autoscaling policy to evaluate");
  VIDUR_CHECK(options.slo_target > 0 && options.slo_target <= 1);
  scenario.validate();
  bool has_slo = false;
  for (const TenantSpec& t : scenario.tenants) has_slo |= t.slo.enabled();
  VIDUR_CHECK_MSG(has_slo,
                  "plan_elastic_capacity_pools: scenario '"
                      << scenario.name
                      << "' has no SLO-carrying tenant to plan against");

  const Trace trace = generate_scenario_trace(scenario, options.trace_seed);
  const std::vector<TenantInfo> tenants = scenario.tenant_infos();

  ElasticPlanResult result;

  // Static peak: every pool pinned at its slot ceiling, always on. The
  // cost comparison of interest holds the *shape* of the fleet fixed and
  // asks what the per-pool policies save by riding the traffic.
  DeploymentConfig static_config = pooled;
  for (PoolSpec& pool : static_config.pools)
    pool.autoscale = AutoscalerConfig{};
  const SimulationMetrics static_metrics =
      session.simulate(static_config, trace, tenants);
  ++result.num_simulations;
  result.static_peak = ElasticPlanPoint::from_metrics(static_metrics);
  result.static_feasible =
      static_metrics.aggregate_slo_attainment() >= options.slo_target;

  // The identical trace under the per-pool autoscaling policies.
  const SimulationMetrics elastic_metrics =
      session.simulate(pooled, trace, tenants);
  ++result.num_simulations;
  result.autoscaled = ElasticPlanPoint::from_metrics(elastic_metrics);

  if (result.static_peak.gpu_hours > 0)
    result.cost_savings_pct =
        (result.static_peak.gpu_hours - result.autoscaled.gpu_hours) /
        result.static_peak.gpu_hours * 100.0;
  return result;
}

}  // namespace vidur
