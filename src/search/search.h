// Vidur-Search (paper §6): evaluates every deployment configuration's
// capacity, filters by latency SLOs, and maximizes QPS per dollar. Also
// exports the Pareto frontiers visualized in the paper's Figure 5.
#pragma once

#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "search/capacity.h"
#include "search/config_space.h"

namespace vidur {

/// Evaluation outcome for one deployment configuration.
struct ConfigEvaluation {
  DeploymentConfig config;
  bool feasible = false;
  double capacity_qps = 0.0;
  double cost_per_hour = 0.0;
  double qps_per_dollar = 0.0;  ///< capacity / hourly cost
  Seconds ttft_p90 = 0.0;       ///< at the capacity operating point
  Seconds tbt_p99 = 0.0;
  bool meets_slo = false;
  int num_probes = 0;
};

struct SearchResult {
  std::vector<ConfigEvaluation> evaluations;

  /// Highest QPS/$ among SLO-compliant configs (nullopt when none qualify).
  std::optional<ConfigEvaluation> best() const;
  /// Highest QPS/$ ignoring SLOs (the paper's Fig. 1a objective).
  std::optional<ConfigEvaluation> best_unconstrained() const;

  /// Pareto frontier of (latency metric, QPS/$): configs not dominated by
  /// any other (lower latency and higher QPS/$). `use_ttft` selects the
  /// TTFT-P90 frontier, otherwise TBT-P99 (Fig. 5 left/middle).
  std::vector<ConfigEvaluation> pareto_frontier(bool use_ttft) const;
};

struct VidurSearchOptions {
  CapacitySearchOptions capacity;
  /// Paper §7.3 defaults: TTFT P90 < 2 s, TBT P99 < 200 ms. The shared
  /// SloSpec (metrics.h) is applied here to the fleet-level percentiles at
  /// the capacity operating point.
  SloSpec slo{2.0, 0.2};
  /// Worker threads (the paper parallelizes per-config searches across
  /// 96 CPU cores). 0 = hardware concurrency.
  int num_threads = 0;
  /// Branch-and-bound pruning: a config's offline throughput is an upper
  /// bound on its capacity, so configs whose offline QPS/$ cannot beat the
  /// best capacity QPS/$ found so far skip the full binary search. Exact
  /// for finding the optimum; disable to get capacity/latency metrics for
  /// every config (needed for Pareto-frontier plots).
  bool prune = true;
};

/// Evaluate the whole space for (session's model, workload).
SearchResult run_search(VidurSession& session, const SearchSpace& space,
                        const TraceSpec& workload,
                        const VidurSearchOptions& options);

}  // namespace vidur
