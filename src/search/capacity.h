// Capacity search (paper §6): the maximum QPS a deployment configuration
// sustains without the request queue blowing up, found by binary search on
// the arrival rate with a P99-scheduling-delay constraint.
#pragma once

#include <cstdint>

#include "core/session.h"
#include "workload/trace_generator.h"

namespace vidur {

struct CapacitySearchOptions {
  /// Minimum requests per probe simulation.
  int num_requests = 300;
  /// Probes must be long enough that queueing is observable: the actual
  /// probe size is max(num_requests, requests_per_slot * concurrency slots)
  /// where slots = max_batch_size * num_replicas.
  int requests_per_slot = 6;
  /// Constraint: P99 scheduling delay must stay below this (paper: 5 s).
  Seconds max_p99_scheduling_delay = 5.0;
  /// Binary-search refinement steps after bracketing.
  int binary_search_iters = 6;
  /// Bracketing: at most this many halvings/doublings of the initial guess.
  int max_bracket_steps = 10;
  /// Request-length / arrival randomness (shared across probes so that the
  /// feasible set is monotone in QPS).
  std::uint64_t trace_seed = 0xcafeULL;

  int probe_requests(const DeploymentConfig& config) const;
};

struct CapacityResult {
  bool feasible = false;       ///< some positive QPS satisfies the constraint
  double capacity_qps = 0.0;   ///< highest feasible probed QPS
  /// Metrics observed at the capacity operating point (TTFT/TBT feed the
  /// SLO filter in Vidur-Search).
  SimulationMetrics metrics_at_capacity;
  int num_probes = 0;          ///< simulations spent
};

/// Probe helper: simulate `config` at `qps` and report whether the delay
/// constraint held (all requests completed and P99 delay under the limit).
bool probe_feasible(const SimulationMetrics& metrics, int num_requests,
                    const CapacitySearchOptions& options);

/// Offline (all-requests-at-t0) throughput of the deployment in QPS — a
/// true upper bound on its capacity, used both as the binary search's
/// initial guess and for branch-and-bound pruning in Vidur-Search.
/// Returns 0 for infeasible deployments.
double offline_throughput_qps(VidurSession& session,
                              const DeploymentConfig& config,
                              const TraceSpec& workload,
                              const CapacitySearchOptions& options);

/// Find the capacity of `config` for the given workload.
/// Infeasible configurations (model does not fit, requests exceed the KV
/// pool) yield `feasible == false` rather than throwing.
/// `offline_qps_hint` > 0 skips the internal offline probe (pass the value
/// from offline_throughput_qps to avoid duplicate work).
CapacityResult find_capacity(VidurSession& session,
                             const DeploymentConfig& config,
                             const TraceSpec& workload,
                             const CapacitySearchOptions& options,
                             double offline_qps_hint = 0.0);

}  // namespace vidur
