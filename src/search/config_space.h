// Deployment configuration space enumeration (Vidur-Search input, paper §6).
#pragma once

#include <vector>

#include "core/deployment.h"
#include "model/model_spec.h"

namespace vidur {

struct SearchSpace {
  std::vector<std::string> skus = {"a100", "h100"};
  std::vector<int> tp_degrees = {1, 2, 4};
  std::vector<int> pp_degrees = {1, 2, 4};
  /// Total GPU budget; replicas = max_total_gpus / (tp * pp) (paper: 16).
  int max_total_gpus = 16;
  std::vector<SchedulerKind> schedulers = {
      SchedulerKind::kVllm, SchedulerKind::kOrca, SchedulerKind::kSarathi};
  std::vector<int> batch_sizes = {32, 64, 128, 256, 512};
  std::vector<TokenCount> sarathi_chunk_sizes = {512, 1024, 2048};
  TokenCount max_tokens_per_iteration = 4096;
  GlobalSchedulerKind global_scheduler = GlobalSchedulerKind::kRoundRobin;

  /// Enumerate every valid deployment of `model`: skips TP degrees that do
  /// not divide the model's heads/FFN and parallelism products exceeding the
  /// GPU budget. (Memory-infeasible configs are filtered later, during
  /// evaluation, where the failure is observable.)
  std::vector<DeploymentConfig> enumerate(const ModelSpec& model) const;

  bool operator==(const SearchSpace&) const = default;
};

}  // namespace vidur
