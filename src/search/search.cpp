#include "search/search.h"

#include <algorithm>
#include <thread>

namespace vidur {

std::optional<ConfigEvaluation> SearchResult::best() const {
  std::optional<ConfigEvaluation> out;
  for (const auto& e : evaluations) {
    if (!e.feasible || !e.meets_slo) continue;
    if (!out || e.qps_per_dollar > out->qps_per_dollar) out = e;
  }
  return out;
}

std::optional<ConfigEvaluation> SearchResult::best_unconstrained() const {
  std::optional<ConfigEvaluation> out;
  for (const auto& e : evaluations) {
    if (!e.feasible) continue;
    if (!out || e.qps_per_dollar > out->qps_per_dollar) out = e;
  }
  return out;
}

std::vector<ConfigEvaluation> SearchResult::pareto_frontier(
    bool use_ttft) const {
  auto latency = [use_ttft](const ConfigEvaluation& e) {
    return use_ttft ? e.ttft_p90 : e.tbt_p99;
  };
  std::vector<ConfigEvaluation> frontier;
  for (const auto& e : evaluations) {
    if (!e.feasible) continue;
    bool dominated = false;
    for (const auto& other : evaluations) {
      if (!other.feasible) continue;
      const bool better_latency = latency(other) < latency(e);
      const bool better_value = other.qps_per_dollar > e.qps_per_dollar;
      const bool no_worse = latency(other) <= latency(e) &&
                            other.qps_per_dollar >= e.qps_per_dollar;
      if (no_worse && (better_latency || better_value)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(e);
  }
  std::sort(frontier.begin(), frontier.end(),
            [&](const ConfigEvaluation& a, const ConfigEvaluation& b) {
              return latency(a) < latency(b);
            });
  return frontier;
}

namespace {

ConfigEvaluation evaluate_config(VidurSession& session,
                                 const DeploymentConfig& config,
                                 const TraceSpec& workload,
                                 const VidurSearchOptions& options,
                                 double offline_qps) {
  ConfigEvaluation eval;
  eval.config = config;
  eval.cost_per_hour = config.cost_per_hour();
  const CapacityResult cap = find_capacity(session, config, workload,
                                           options.capacity, offline_qps);
  eval.num_probes = cap.num_probes;
  if (cap.feasible) {
    eval.feasible = true;
    eval.capacity_qps = cap.capacity_qps;
    eval.qps_per_dollar = cap.capacity_qps / eval.cost_per_hour;
    eval.ttft_p90 = cap.metrics_at_capacity.ttft.p90;
    eval.tbt_p99 = cap.metrics_at_capacity.tbt.p99;
    // A zero target is disabled (see SloSpec), not an unmeetable bound.
    eval.meets_slo = (options.slo.ttft_target <= 0 ||
                      eval.ttft_p90 < options.slo.ttft_target) &&
                     (options.slo.tbt_target <= 0 ||
                      eval.tbt_p99 < options.slo.tbt_target);
  }
  return eval;
}

}  // namespace

SearchResult run_search(VidurSession& session, const SearchSpace& space,
                        const TraceSpec& workload,
                        const VidurSearchOptions& options) {
  const std::vector<DeploymentConfig> configs =
      space.enumerate(session.model());

  SearchResult result;
  result.evaluations.resize(configs.size());

  // Onboarding is lazy and mutex-guarded, but forcing it here keeps the
  // worker tasks free of the expensive profiling critical section.
  for (const auto& sku : space.skus) session.onboard(sku);

  const int threads = options.num_threads > 0
                          ? options.num_threads
                          : static_cast<int>(hardware_threads());
  ThreadPool pool(static_cast<std::size_t>(threads));

  // Phase 1: cheap offline-throughput probe for every config (one static
  // simulation each). Offline throughput upper-bounds capacity.
  std::vector<double> offline_qps(configs.size(), 0.0);
  parallel_for(pool, configs.size(), [&](std::size_t i) {
    offline_qps[i] =
        offline_throughput_qps(session, configs[i], workload, options.capacity);
  });

  if (!options.prune) {
    parallel_for(pool, configs.size(), [&](std::size_t i) {
      result.evaluations[i] = evaluate_config(session, configs[i], workload,
                                              options, offline_qps[i]);
      ++result.evaluations[i].num_probes;  // the offline probe
    });
    return result;
  }

  // Phase 2 (branch and bound): visit configs in descending upper-bound
  // QPS/$ order; skip a config when even its upper bound cannot beat the
  // best capacity QPS/$ already found. Exact for the optimum.
  std::vector<std::size_t> order(configs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return offline_qps[a] / configs[a].cost_per_hour() >
           offline_qps[b] / configs[b].cost_per_hour();
  });

  double best_qps_per_dollar = 0.0;
  for (std::size_t i : order) {
    ConfigEvaluation& eval = result.evaluations[i];
    const double upper_bound = offline_qps[i] / configs[i].cost_per_hour();
    if (offline_qps[i] <= 0.0 || upper_bound <= best_qps_per_dollar) {
      // Pruned: record the bound so callers can see why it was skipped.
      eval.config = configs[i];
      eval.cost_per_hour = configs[i].cost_per_hour();
      eval.num_probes = 1;
      continue;
    }
    eval = evaluate_config(session, configs[i], workload, options,
                           offline_qps[i]);
    ++eval.num_probes;  // the offline probe
    if (eval.feasible)
      best_qps_per_dollar = std::max(best_qps_per_dollar, eval.qps_per_dollar);
  }

  return result;
}

}  // namespace vidur
