// The Vidur event-driven simulator core (paper Fig. 2, component 4).
//
// Wires together the three-tier scheduler stack, an execution backend (the
// runtime-estimator predictor, or the ground-truth reference executor), and
// metric collection, then plays a request trace to completion.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/cluster_manager.h"
#include "cluster/pool.h"
#include "common/thread_pool.h"
#include "execution/execution_backend.h"
#include "fault/fault_config.h"
#include "fault/fault_injector.h"
#include "hardware/parallel_config.h"
#include "hardware/sku.h"
#include "kvcache/prefix_cache.h"
#include "kvcache/prefix_cache_config.h"
#include "metrics/metrics.h"
#include "model/model_spec.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "scheduler/global_scheduler.h"
#include "scheduler/replica_scheduler.h"
#include "scheduler/stage_scheduler.h"
#include "sim/disagg_config.h"
#include "sim/event_queue.h"
#include "workload/request.h"

namespace vidur {

class RollingCollector;

/// Observability attachments of one run (src/obs/). All optional: with the
/// defaults the simulator still maintains its internal metrics registry
/// (snapshotted into SimulationMetrics) but records no trace and no rolling
/// windows. Pointers are borrowed — the caller keeps them alive across
/// run().
struct SimObs {
  /// Lifecycle/batch/cluster event recorder; nullptr disables tracing
  /// (the hot path then pays a single branch per would-be record).
  TraceRecorder* trace = nullptr;
  /// External registry to thread through instead of the simulator's own
  /// (lets several components share one namespace).
  MetricsRegistry* registry = nullptr;
  /// Rolling windowed metrics (per-tenant/per-pool TTFT/TBT/SLO/queue
  /// depth): window length in simulated seconds; 0 disables.
  Seconds rolling_window_s = 0.0;
};

struct SimulationConfig {
  ModelSpec model;
  NodeSpec node;
  ParallelConfig parallel;
  SchedulerConfig scheduler;
  GlobalSchedulerKind global_scheduler = GlobalSchedulerKind::kRoundRobin;
  double memory_utilization = 0.9;
  /// Safety cutoff; events beyond this simulated time are not executed.
  Seconds max_sim_time = kInfiniteTime;
  /// Collect per-operator time attribution (paper §5.2). Costs one extra
  /// backend decomposition per stage execution; off by default.
  bool collect_operator_metrics = false;
  /// Overlap inter-stage activation sends with the sending stage's next
  /// micro-batch (paper §4.5 future work: asynchronous-communication
  /// pipeline scheduling). The send still delays the downstream stage; it
  /// just no longer occupies the upstream one. No effect when PP = 1.
  bool async_pipeline_comm = false;
  /// Prefill/decode disaggregation; when enabled, `scheduler.kind` is
  /// ignored (each role runs its dedicated policy) and
  /// parallel.num_replicas counts both roles together.
  DisaggConfig disagg;
  /// Tenant identities for per-tenant metric attribution (scenario engine).
  /// Empty for single-tenant runs.
  std::vector<TenantInfo> tenants;
  /// Elastic cluster: when enabled, `parallel.num_replicas` becomes the
  /// fleet's slot count (the scale-up ceiling) and a ClusterManager drives
  /// replica lifecycles from the configured autoscaling policy. Only
  /// kActive replicas receive new requests; draining replicas finish their
  /// outstanding work before their slot is released. Not combinable with
  /// disaggregated serving (the legacy `disagg` form; pool deployments
  /// autoscale disaggregated roles independently).
  AutoscalerConfig autoscale;
  /// Heterogeneous pool deployment: replica slots are laid out pool by
  /// pool, each pool with its own SKU, parallelism, role and (optional)
  /// autoscaling policy. When non-empty, `node`, `parallel`, `disagg.
  /// num_prefill_replicas` and `autoscale` above are ignored and must stay
  /// disabled (disagg transfer_* fields still parameterize KV hand-off).
  /// Fleet-average MFU/MBU/energy use slot-weighted SKU aggregates — exact
  /// for homogeneous pools, an approximation for mixed ones; the per-pool
  /// breakout in the scaling report carries exact attribution from each
  /// pool's own batch records (and GPU-hours/cost are always exact).
  std::vector<PoolSpec> pools;
  /// Per-replica prefix cache (KV reuse across sessions and shared system
  /// prompts). Each replica gets its own cache sized to capacity_fraction
  /// of its pool's KV blocks; retained blocks count in the KV-pressure
  /// signal and are reclaimed on demand by active work.
  PrefixCacheConfig prefix_cache;
  /// Fault injection (src/fault/): crash/spot/degrade profiles plus the
  /// recovery and load-shedding policies. Profiles that kill replicas
  /// require an elastic fleet (autoscaling repairs the capacity hole);
  /// degrade-only profiles work anywhere.
  FaultConfig faults;
  /// Worker threads of the sharded simulation core (spec knob
  /// `execution.threads`, default 1). Replicas advance on private event
  /// queues inside conservative time windows bounded by the next central
  /// event (a routing decision, autoscaler tick, fault edge or KV
  /// migration); the per-shard streams merge deterministically at every
  /// window boundary, so the result is bit-identical at every thread
  /// count. Must be 1 for configurations whose cross-shard events have
  /// zero lookahead or whose collection is not thread-safe (legacy
  /// disaggregation, role-disaggregated pools, operator metrics).
  int threads = 1;
  /// Observability: trace recorder, shared registry, rolling windows.
  SimObs obs;
};

/// Creates the per-replica timing backend (a predictor shared across
/// replicas, or per-replica reference executors with forked RNG streams).
using BackendFactory =
    std::function<std::unique_ptr<ExecutionBackend>(ReplicaId)>;

class Simulator {
 public:
  /// Throws vidur::Error on invalid configuration (model does not fit,
  /// inconsistent parallelism, ...).
  Simulator(SimulationConfig config, Trace trace, BackendFactory factory);

  /// Play the trace to completion and aggregate metrics.
  SimulationMetrics run();

  const std::vector<RequestState>& request_states() const { return states_; }
  const MemoryPlan& memory_plan() const { return memory_plan_; }
  /// The elastic-fleet manager, or nullptr for fixed-fleet runs.
  const ClusterManager* cluster() const { return cluster_.get(); }
  /// Fleet slot count (fixed fleets: the configured replica count).
  int num_slots() const { return num_slots_; }
  /// One slot's prefix-cache pool, or nullptr when caching is off.
  const PrefixCache* prefix_cache(ReplicaId r) const {
    return replicas_[static_cast<std::size_t>(r)].cache.get();
  }

 private:
  struct InFlightBatch {
    BatchSpec spec;
    /// Aggregates frozen at submission (items do not change in flight);
    /// saves re-walking the batch for FLOP/HBM/token accounting.
    BatchAggregates agg;
    ReplicaId replica = 0;
    Seconds start_time = 0.0;
    FlopCount flops = 0.0;
    double kv_utilization = 0.0;
    std::int64_t trace_seq = -1;  ///< batch sequence number when tracing
    /// Slot-liveness guard: a stale/duplicated handle reaching the stage
    /// machinery fails fast instead of silently reading a recycled slot.
    bool live = false;
    /// The batch's replica died mid-flight: the pipeline events still
    /// drain (they were already scheduled), but the batch produces no
    /// metrics, no request progress and no follow-on scheduling.
    bool cancelled = false;
  };

  struct Replica {
    std::unique_ptr<ReplicaScheduler> scheduler;
    std::unique_ptr<ExecutionBackend> backend;
    std::vector<StageScheduler> stages;
    std::unique_ptr<PrefixCache> cache;  ///< null when prefix caching off
    int batches_in_flight = 0;
    /// Straggler mode (src/fault/): execution-time predictions are scaled
    /// by this factor while > 1.0. Reset to 1.0 when the replica dies.
    double slow_factor = 1.0;
    /// In-flight batches live in recycled slots indexed by their handle:
    /// lookup is a vector index, and a reused slot's BatchSpec keeps its
    /// item capacity, so steady-state iterations form batches without
    /// allocating. Per replica — never shared across shard threads.
    std::vector<InFlightBatch> in_flight;
    std::vector<StageScheduler::BatchHandle> free_handles;
    /// Scheduler preemption/admission tallies, kept replica-private so
    /// shard threads never race on the registry counters; summed into
    /// `scheduler.preemptions` / `scheduler.admissions` at end of run.
    Counter preemptions;
    Counter admissions;
  };

  /// Typed-event switch: the single dispatch point of the hot loop.
  void dispatch(const SimEvent& event);
  void on_arrival(RequestState* request);
  /// Route (or re-route) a request through the global scheduler.
  void route_request(RequestState* request);
  /// Drain started on `replica_id`: push its queued-but-unstarted requests
  /// back through the global scheduler so surviving replicas take them.
  void reroute_waiting(ReplicaId replica_id);
  void try_schedule(ReplicaId replica_id);
  void start_stage(ReplicaId replica_id, StageId stage,
                   StageScheduler::BatchHandle handle);
  void on_stage_end(ReplicaId replica_id, StageId stage,
                    StageScheduler::BatchHandle handle, Seconds comm_time);
  /// Micro-batch (activations included) arrives at `stage`.
  void deliver_to_stage(ReplicaId replica_id, StageId stage,
                        StageScheduler::BatchHandle handle);
  void finish_batch(ReplicaId replica_id,
                    StageScheduler::BatchHandle handle);
  void pull_deferred(ReplicaId replica_id);
  /// Outstanding request counts of the first `count` replicas. Returns a
  /// member scratch buffer: valid until the next call, never reallocates
  /// on the routing hot path.
  const std::vector<int>& outstanding_counts(int count) const;

  // ---- sharded windowed engine ----
  /// Deferred cross-shard effect of one batch that completed inside a
  /// window round. Shard threads only stage these; the merge barrier
  /// applies them (batch metrics, fleet counters, remaining-work
  /// accounting) in global (time, shard, position) order, so the shared
  /// aggregation state is only ever touched by the driving thread.
  struct ShardDone {
    BatchRecord record;  ///< record.end_time orders the op globally
    std::int64_t completions = 0;
    /// Staged trace records emitted before this op — its interleave
    /// position within the shard's trace stream.
    std::uint64_t trace_pos = 0;
  };
  /// One replica's private simulation timeline: its own event queue plus
  /// the staging buffers drained at every window boundary. Everything a
  /// shard thread mutates while running events lives here or in the
  /// matching Replica — nothing shared, no locks on the hot path.
  struct SimShard {
    ReplicaId replica = -1;
    EventQueue events;
    /// Trace records staged in shard-local order (unbounded — merged and
    /// cleared every round, so it never grows past one window's output).
    TraceRecorder staging{TraceRecorder::kUnbounded};
    std::vector<ShardDone> done;
    /// Next shard-local batch sequence number; staged records carry the
    /// provisional id -(local)-2 until the merge assigns global seqs.
    std::int64_t next_local_batch = 0;
    std::int64_t arrivals = 0;  ///< summed into requests.arrivals at end
  };

  /// Shard-local clock/queue/trace of the calling thread, falling back to
  /// the central ones outside a window round. tls_shard_ is the only
  /// thread-local switch: every handler reads time and schedules follow-on
  /// events through these, so one code path serves both engines.
  Seconds sim_now() const;
  EventQueue& local_events();
  TraceRecorder* local_trace();
  /// Run one shard's events strictly below `window` (and within
  /// max_sim_time), with tls_shard_ pointing at it.
  void run_shard(SimShard& shard, Seconds window);
  /// One conservative round: advance every shard with pending work below
  /// `window` (in parallel when a team exists), then merge.
  void shard_round(Seconds window);
  /// Deterministic k-way merge of the round's staged trace records and
  /// completion ops by (time, shard, position); assigns global batch
  /// sequence numbers and applies the deferred aggregation.
  void merge_round();

  // ---- heterogeneous pools ----
  bool pool_mode() const { return !config_.pools.empty(); }
  /// Pool owning a slot (pool mode only).
  const PoolSpec& pool_of(ReplicaId r) const {
    return config_.pools[static_cast<std::size_t>(
        pool_of_slot_[static_cast<std::size_t>(r)])];
  }
  /// The replica's parallelism: its pool's, or the global config's.
  const ParallelConfig& parallel_of(ReplicaId r) const {
    return pool_mode() ? pool_of(r).parallel : config_.parallel;
  }
  /// May this slot receive arrivals (role-wise; elastic activity aside)?
  bool arrival_eligible(ReplicaId r) const {
    if (pool_mode()) return pool_of(r).role != PoolRole::kDecode;
    return !config_.disagg.enabled() || is_prefill_replica(r);
  }
  /// Role-aware arrival mask: arrival-eligible AND (if elastic) active.
  /// Returns a member scratch buffer, rebuilt per call.
  const std::vector<bool>& arrival_mask() const;

  // ---- disaggregated serving ----
  bool is_prefill_replica(ReplicaId r) const {
    if (pool_mode()) return pool_of(r).role == PoolRole::kPrefill;
    return config_.disagg.enabled() && r < config_.disagg.num_prefill_replicas;
  }
  /// Hand prefilled requests of a completed batch to decode replicas.
  void migrate_prefilled(ReplicaId replica_id, const BatchSpec& batch);
  /// KV transfer finished: route to the least-loaded decode replica.
  void on_migrated(RequestState* request);
  Seconds kv_transfer_time(const RequestState& request) const;

  // ---- fault injection & recovery (src/fault/) ----
  /// Construct the FaultInjector and its hooks (constructor helper).
  void setup_faults();
  /// Abrupt replica failure (crash or expired spot notice): cancel its
  /// in-flight batches, tear down scheduler + KV + prefix-cache state,
  /// fail the slot through the cluster lifecycle (held until `hold_until`
  /// for spot reclaims), then classify and recover every casualty.
  /// Tolerates replicas that already left the active/draining states.
  void kill_replica(ReplicaId replica_id, Seconds hold_until, bool spot);
  /// Recovery classification of one casualty of `replica_id`'s failure:
  /// queued-but-unstarted work hands off immediately; started work retries
  /// with exponential backoff + jitter until max_attempts, then is lost.
  void recover_request(RequestState* request, ReplicaId replica_id);
  /// Re-entry point of a backoff retry; applies the shed gate, then routes.
  void reenter_request(RequestState* request);
  /// Graceful degradation: true when the admission controller sheds this
  /// request (capacity below the floor and priority at/below the cutoff).
  bool maybe_shed(RequestState* request);
  /// Priority of a request's tenant (untagged tenants are priority 0).
  int tenant_priority(TenantId tenant) const;
  /// Fill metrics.resilience from the injector log + recovery tallies and
  /// mirror it into the `faults.*` registry counters.
  void aggregate_resilience(ResilienceMetrics& out) const;

  // ---- observability (src/obs/) ----
  /// Wire the registry/trace/rolling attachments; called once from the
  /// constructor after replicas and cluster manager exist.
  void setup_observability();
  /// Rolling track of a tenant, or -1 when rolling is off / unmapped.
  int tenant_track(TenantId tenant) const;
  /// In-system depth change of the cluster + tenant tracks.
  void rolling_request_delta(const RequestState& request, int delta);
  /// Outstanding-work depth change of a replica's pool track.
  void rolling_pool_delta(ReplicaId replica_id, int delta);
  /// Completion accounting across cluster, tenant and pool tracks.
  void rolling_completions(ReplicaId replica_id,
                           const std::vector<RequestState*>& finished);
  /// Merge every replica's prefix-cache stats into `out` (totals,
  /// per-tenant and per-pool slices) and mirror them into the registry.
  void aggregate_prefix_cache(PrefixCacheMetrics& out) const;

  SimulationConfig config_;
  Trace trace_;
  int num_slots_ = 0;  ///< total replica slots (all pools, or num_replicas)
  EventQueue events_;
  GlobalScheduler global_;
  MemoryPlan memory_plan_;
  /// Pool mode: per-pool memory plans and the slot -> pool index map.
  std::vector<MemoryPlan> pool_plans_;
  std::vector<int> pool_of_slot_;
  mutable std::vector<bool> arrival_mask_scratch_;
  std::vector<Replica> replicas_;
  std::vector<RequestState> states_;
  MetricsCollector metrics_;
  mutable std::vector<int> outstanding_scratch_;
  std::unique_ptr<ClusterManager> cluster_;  ///< elastic fleets only
  std::size_t remaining_requests_ = 0;       ///< not yet completed
  Seconds last_batch_end_ = 0.0;             ///< time of the last batch end
  bool ran_ = false;

  // ---- fault injection state ----
  std::unique_ptr<FaultInjector> injector_;  ///< null = faults off
  Rng retry_rng_;  ///< backoff jitter draws (seeded off faults.seed)
  /// Kill times awaiting repair, FIFO: each autoscaler activation after a
  /// kill closes the oldest hole (MTTR = mean close - open).
  std::deque<Seconds> pending_repairs_;
  Seconds mttr_sum_ = 0.0;
  std::int64_t num_repairs_ = 0;
  std::int64_t num_retries_ = 0;
  std::int64_t num_handoffs_ = 0;
  std::int64_t num_shed_ = 0;
  std::int64_t num_lost_ = 0;
  TokenCount tokens_reprefilled_ = 0;
  TokenCount decode_tokens_discarded_ = 0;
  std::vector<int> tenant_priority_by_id_;  ///< tenant id -> priority

  // ---- observability state ----
  TraceRecorder* trace_rec_ = nullptr;  ///< nullptr = tracing off
  MetricsRegistry* registry_ = nullptr;  ///< external (obs) or owned
  std::unique_ptr<MetricsRegistry> owned_registry_;
  std::unique_ptr<RollingCollector> rolling_;  ///< nullptr = rolling off
  /// Counter handles resolved once; hot-path increments are pointer adds.
  Counter* ctr_arrivals_ = nullptr;
  Counter* ctr_completions_ = nullptr;
  Counter* ctr_batches_ = nullptr;
  Counter* ctr_migrations_ = nullptr;
  Counter* ctr_reroutes_ = nullptr;
  std::int64_t next_batch_seq_ = 0;

  // ---- sharded windowed engine state ----
  /// Arrivals pre-routable? True exactly when routing is a pure function
  /// of the arrival order (round-robin over a static, fault-degrade-only,
  /// non-disaggregated fleet without rolling windows or operator
  /// metrics): targets are then known up front, arrivals seed per-replica
  /// shard queues, and the stretches between central events run sharded.
  /// Otherwise every arrival stays a central event and the run degenerates
  /// to the legacy single-queue order exactly.
  bool preroute_ = false;
  std::vector<SimShard> shards_;  ///< one per slot when preroute_, else empty
  /// Per-shard local -> global batch sequence map (grown at merge time).
  std::vector<std::vector<std::int64_t>> shard_batch_seq_;
  std::vector<int> dirty_scratch_;  ///< shards with work this round
  std::vector<std::size_t> merge_rec_cur_;   ///< merge cursors: records
  std::vector<std::size_t> merge_done_cur_;  ///< merge cursors: done ops
  std::unique_ptr<SpinTeam> team_;  ///< threads > 1 and > 1 shard only
  /// The running thread's shard during a window round, null in central
  /// context (and always on the legacy path).
  static thread_local SimShard* tls_shard_;

  /// Rolling-track layout: 0 = cluster, then tenants, then pools.
  std::vector<int> tenant_track_by_id_;  ///< tenant id -> track (-1: none)
  std::vector<const SloSpec*> tenant_slo_by_id_;  ///< nullptr: no SLO
  int pool_track_base_ = -1;  ///< first pool track, -1 when absent
};

}  // namespace vidur
