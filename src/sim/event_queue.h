// Discrete-event engine: a time-ordered queue of callbacks with stable FIFO
// ordering for simultaneous events (deterministic replay).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace vidur {

class EventQueue {
 public:
  /// Schedule `action` at absolute time `time` (>= now).
  void schedule(Seconds time, std::function<void()> action) {
    VIDUR_CHECK_MSG(time >= now_, "event scheduled in the past");
    heap_.push(Event{time, next_seq_++, std::move(action)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  Seconds now() const { return now_; }

  /// Pop and execute the earliest event; advances now().
  void run_next() {
    VIDUR_CHECK_MSG(!heap_.empty(), "run_next() on an empty queue");
    // Moving out of the priority queue requires a const_cast; the element is
    // popped immediately afterwards so the ordering invariant is unharmed.
    auto& top = const_cast<Event&>(heap_.top());
    now_ = top.time;
    auto action = std::move(top.action);
    heap_.pop();
    action();
  }

  /// Time of the earliest pending event.
  Seconds next_time() const {
    VIDUR_CHECK(!heap_.empty());
    return heap_.top().time;
  }

 private:
  struct Event {
    Seconds time;
    std::uint64_t seq;
    std::function<void()> action;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
  Seconds now_ = 0.0;
};

}  // namespace vidur
