// Discrete-event engine: a time-ordered queue with stable FIFO ordering for
// simultaneous events (deterministic replay).
//
// The hot path is typed: simulator events are plain tagged records stored
// inline in a 4-ary min-heap (no per-event heap allocation, no virtual
// dispatch) and handed back to the owner, which dispatches them with a
// switch. A callback escape hatch remains for rare-path events (cluster
// scale-up chains, tests): those store their std::function in a side slab
// and the heap node carries only the slot index, so even the escape hatch
// never moves a std::function through the heap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace vidur {

struct RequestState;

enum class EventKind : std::uint8_t {
  kCallback = 0,    ///< escape hatch: slab-stored std::function
  kArrival,         ///< a request enters the system
  kStageEnd,        ///< a pipeline stage finished a micro-batch
  kDeliverToStage,  ///< activations arrive at a downstream stage
  kMigrated,        ///< disaggregation: KV transfer landed on a decode replica
  kAutoscalerTick,  ///< periodic cluster-manager decision point
};

/// One typed simulator event. Which fields are meaningful depends on `kind`;
/// unused fields keep their defaults. Trivially copyable by design — heap
/// sifts move these with plain stores.
struct SimEvent {
  EventKind kind = EventKind::kCallback;
  std::int32_t replica = -1;
  std::int32_t stage = -1;
  /// StageEnd/DeliverToStage: the in-flight batch handle.
  /// Callback: the slab slot holding the action.
  std::int64_t handle = -1;
  /// StageEnd under asynchronous pipelining: the activation-send lag that
  /// delays the downstream hand-off.
  Seconds comm_time = 0.0;
  RequestState* request = nullptr;  ///< Arrival/Migrated
};

class EventQueue {
 public:
  /// Escape hatch: schedule a callback at absolute time `time` (>= now).
  /// One slab slot per pending callback; prefer typed events on hot paths.
  void schedule(Seconds time, std::function<void()> action) {
    // Validate before claiming a slab slot so a rejected schedule leaks
    // nothing (push() re-checks for the typed path).
    VIDUR_CHECK_MSG(time >= now_, "event scheduled in the past");
    SimEvent ev;
    ev.kind = EventKind::kCallback;
    if (free_slots_.empty()) {
      ev.handle = static_cast<std::int64_t>(slab_.size());
      slab_.push_back(std::move(action));
    } else {
      ev.handle = free_slots_.back();
      free_slots_.pop_back();
      slab_[static_cast<std::size_t>(ev.handle)] = std::move(action);
    }
    push(time, ev);
  }

  /// Typed fast path: no allocation, no type erasure.
  void schedule_event(Seconds time, const SimEvent& ev) { push(time, ev); }

  /// Autoscaler decision tick; executed by the queue via the registered
  /// tick handler so standalone ClusterManager users need no dispatcher.
  void schedule_tick(Seconds time) {
    SimEvent ev;
    ev.kind = EventKind::kAutoscalerTick;
    push(time, ev);
  }

  /// Handler invoked for kAutoscalerTick events (set by ClusterManager,
  /// cleared on its destruction). Single slot: re-registering without
  /// clearing first would silently reroute another owner's ticks.
  void set_tick_handler(std::function<void()> handler) {
    VIDUR_CHECK_MSG(handler == nullptr || tick_handler_ == nullptr,
                    "tick handler already registered");
    tick_handler_ = std::move(handler);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  Seconds now() const { return now_; }
  /// Events executed so far (the denominator of events/s benchmarks).
  std::uint64_t num_processed() const { return num_processed_; }

  /// Pop and execute the earliest event; advances now(). Callback and tick
  /// events run internally; every other kind is passed to `dispatch`.
  template <class Dispatch>
  void run_next(Dispatch&& dispatch) {
    VIDUR_CHECK_MSG(!heap_.empty(), "run_next() on an empty queue");
    const Node top = heap_.front();
    pop_min();
    now_ = top.time;
    ++num_processed_;
    switch (top.event.kind) {
      case EventKind::kCallback: {
        const auto slot = static_cast<std::size_t>(top.event.handle);
        // Move the action out before running it: the callback may schedule
        // new callbacks that immediately reuse the freed slot.
        auto action = std::move(slab_[slot]);
        slab_[slot] = nullptr;
        free_slots_.push_back(top.event.handle);
        action();
        break;
      }
      case EventKind::kAutoscalerTick:
        VIDUR_CHECK_MSG(tick_handler_ != nullptr,
                        "autoscaler tick with no tick handler registered");
        tick_handler_();
        break;
      default:
        dispatch(top.event);
    }
  }

  /// Callback-only convenience (tests, standalone ClusterManager): throws
  /// if a typed simulator event surfaces without a dispatcher.
  void run_next() {
    run_next([](const SimEvent&) {
      VIDUR_CHECK_MSG(false,
                      "typed simulator event popped without a dispatcher");
    });
  }

  /// Time of the earliest pending event.
  Seconds next_time() const {
    VIDUR_CHECK(!heap_.empty());
    return heap_.front().time;
  }

 private:
  struct Node {
    Seconds time;
    std::uint64_t seq;
    SimEvent event;
  };

  /// Strict (time, seq) order: seq breaks ties FIFO so same-time events
  /// replay in scheduling order — the determinism guarantee.
  static bool before(const Node& a, const Node& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void push(Seconds time, const SimEvent& ev) {
    VIDUR_CHECK_MSG(time >= now_, "event scheduled in the past");
    heap_.push_back(Node{time, next_seq_++, ev});
    sift_up(heap_.size() - 1);
  }

  void pop_min() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (heap_.size() > 1) sift_down(0);
  }

  // 4-ary heap: shallower than binary (log4 n levels) and the four children
  // share two cache lines, so pops do fewer, cheaper comparisons.
  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i) {
    const Node node = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before(node, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = node;
  }

  void sift_down(std::size_t i) {
    const Node node = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = kArity * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + kArity, n);
      for (std::size_t c = first + 1; c < last; ++c)
        if (before(heap_[c], heap_[best])) best = c;
      if (!before(heap_[best], node)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = node;
  }

  std::vector<Node> heap_;
  std::vector<std::function<void()>> slab_;  ///< pending callback actions
  std::vector<std::int64_t> free_slots_;
  std::function<void()> tick_handler_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t num_processed_ = 0;
  Seconds now_ = 0.0;
};

}  // namespace vidur
