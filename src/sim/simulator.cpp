#include "sim/simulator.h"

#include <algorithm>

#include "common/check.h"
#include "scheduler/disagg_policies.h"

namespace vidur {

Simulator::Simulator(SimulationConfig config, Trace trace,
                     BackendFactory factory)
    : config_(std::move(config)),
      trace_(std::move(trace)),
      // Under disaggregation, arrivals are only routed among the prefill
      // replicas; decode replicas receive work via KV-transfer hand-off.
      global_(config_.global_scheduler,
              config_.disagg.enabled() ? config_.disagg.num_prefill_replicas
                                       : config_.parallel.num_replicas),
      memory_plan_(plan_memory(config_.model, config_.node, config_.parallel,
                               config_.memory_utilization)),
      metrics_(ClusterResources{
          .num_replicas = config_.parallel.num_replicas,
          .gpus_per_replica = config_.parallel.gpus_per_replica(),
          .peak_flops_per_gpu = config_.node.sku.peak_flops(),
          .hbm_bytes_per_sec_per_gpu = config_.node.sku.hbm_bytes_per_sec(),
          .idle_watts_per_gpu = config_.node.sku.idle_watts,
          .peak_watts_per_gpu = config_.node.sku.peak_watts}) {
  config_.model.validate();
  config_.parallel.validate();
  config_.scheduler.validate();
  VIDUR_CHECK(factory != nullptr);
  if (config_.autoscale.enabled()) {
    config_.autoscale.validate();
    VIDUR_CHECK_MSG(!config_.disagg.enabled(),
                    "autoscaling is not supported with disaggregated "
                    "serving yet");
  }
  if (config_.disagg.enabled()) {
    VIDUR_CHECK_MSG(
        config_.disagg.num_prefill_replicas < config_.parallel.num_replicas,
        "disaggregation requires at least one decode replica");
    VIDUR_CHECK(config_.disagg.transfer_bandwidth_gbps > 0);
    VIDUR_CHECK(config_.disagg.transfer_latency >= 0);
  }

  replicas_.reserve(static_cast<std::size_t>(config_.parallel.num_replicas));
  for (ReplicaId r = 0; r < config_.parallel.num_replicas; ++r) {
    Replica replica;
    if (!config_.disagg.enabled()) {
      replica.scheduler =
          make_replica_scheduler(config_.scheduler, memory_plan_);
    } else if (is_prefill_replica(r)) {
      replica.scheduler = std::make_unique<DisaggPrefillScheduler>(
          config_.scheduler, memory_plan_);
    } else {
      replica.scheduler = std::make_unique<DisaggDecodeScheduler>(
          config_.scheduler, memory_plan_);
    }
    replica.backend = factory(r);
    VIDUR_CHECK(replica.backend != nullptr);
    replica.stages.resize(
        static_cast<std::size_t>(config_.parallel.pipeline_parallel));
    replicas_.push_back(std::move(replica));
  }

  metrics_.set_tenants(config_.tenants);

  if (config_.autoscale.enabled()) {
    ClusterManager::Hooks hooks;
    // outstanding() already covers requests inside in-flight batches (they
    // stay in the running set until their batch ends), so it serves both
    // as the sizing signal and as the drain-idle predicate.
    hooks.replica_load = [this](ReplicaId r) {
      return replicas_[static_cast<std::size_t>(r)].scheduler->outstanding();
    };
    hooks.parked_requests = [this] {
      return static_cast<int>(global_.num_parked());
    };
    hooks.work_remaining = [this] { return remaining_requests_ > 0; };
    hooks.on_activated = [this](ReplicaId r) { try_schedule(r); };
    hooks.on_draining = [this](ReplicaId r) { reroute_waiting(r); };
    cluster_ = std::make_unique<ClusterManager>(
        config_.autoscale, config_.parallel.num_replicas, &events_,
        std::move(hooks));
  }

  // Request states must never reallocate: schedulers hold raw pointers.
  states_.reserve(trace_.size());
  for (const Request& req : trace_) {
    RequestState state;
    state.request = req;
    state.record.id = req.id;
    state.record.tenant = req.tenant;
    state.record.arrival_time = req.arrival_time;
    state.record.prefill_tokens = req.prefill_tokens;
    state.record.decode_tokens = req.decode_tokens;
    // One slot per output token: token-time appends never reallocate.
    state.record.token_times.reserve(
        static_cast<std::size_t>(req.decode_tokens));
    states_.push_back(std::move(state));
  }
}

SimulationMetrics Simulator::run() {
  VIDUR_CHECK_MSG(!ran_, "Simulator::run() may only be called once");
  ran_ = true;

  remaining_requests_ = states_.size();
  if (cluster_) cluster_->start();

  for (RequestState& state : states_) {
    SimEvent ev;
    ev.kind = EventKind::kArrival;
    ev.request = &state;
    events_.schedule_event(state.request.arrival_time, ev);
  }

  while (!events_.empty()) {
    if (events_.next_time() > config_.max_sim_time) break;
    events_.run_next([this](const SimEvent& ev) { dispatch(ev); });
  }

  for (const RequestState& state : states_)
    metrics_.record_request(state.record);
  // Elastic runs leave one trailing autoscaler tick behind the last batch
  // end; account the run up to the last real progress instead so the
  // static-vs-autoscaled makespan/cost comparison stays apples-to-apples.
  const Seconds end_time = cluster_ && remaining_requests_ == 0
                               ? last_batch_end_
                               : events_.now();
  // The scaling report feeds finalize() so idle energy is billed on the
  // fleet's actual paid GPU-time, not the static slot ceiling.
  const ClusterScalingReport report =
      cluster_ ? cluster_->report(end_time,
                                  config_.parallel.gpus_per_replica(),
                                  config_.node.sku.cost_per_hour)
               : static_fleet_report(config_.parallel.num_replicas, end_time,
                                     config_.parallel.gpus_per_replica(),
                                     config_.node.sku.cost_per_hour);
  SimulationMetrics metrics = metrics_.finalize(end_time, report);
  metrics.num_sim_events = events_.num_processed();
  return metrics;
}

void Simulator::dispatch(const SimEvent& event) {
  switch (event.kind) {
    case EventKind::kArrival:
      on_arrival(event.request);
      break;
    case EventKind::kStageEnd:
      on_stage_end(event.replica, event.stage, event.handle, event.comm_time);
      break;
    case EventKind::kDeliverToStage:
      deliver_to_stage(event.replica, event.stage, event.handle);
      break;
    case EventKind::kMigrated:
      on_migrated(event.request);
      break;
    default:
      VIDUR_CHECK_MSG(false, "unhandled simulator event kind");
  }
}

void Simulator::on_arrival(RequestState* request) { route_request(request); }

void Simulator::route_request(RequestState* request) {
  const int routable = config_.disagg.enabled()
                           ? config_.disagg.num_prefill_replicas
                           : config_.parallel.num_replicas;
  static const std::vector<bool> kEveryReplica;  // empty mask = all routable
  const ReplicaId target =
      global_.route(request, outstanding_counts(routable),
                    cluster_ ? cluster_->routable_mask() : kEveryReplica);
  if (target >= 0) {
    request->replica = target;
    replicas_[static_cast<std::size_t>(target)].scheduler->enqueue(request);
    try_schedule(target);
  } else {
    // Deferred binding: every routable replica with room may pull it.
    for (ReplicaId r = 0; r < routable; ++r) try_schedule(r);
  }
}

void Simulator::reroute_waiting(ReplicaId replica_id) {
  Replica& replica = replicas_[static_cast<std::size_t>(replica_id)];
  // The draining replica is already masked out of the routable set, so
  // these land on surviving (or parked for warming) capacity.
  for (RequestState* r : replica.scheduler->take_waiting()) {
    r->replica = -1;
    route_request(r);
  }
}

void Simulator::pull_deferred(ReplicaId replica_id) {
  if (!global_.has_parked_requests()) return;
  // Decode replicas never pull arrivals; their work comes via hand-off.
  if (config_.disagg.enabled() && !is_prefill_replica(replica_id)) return;
  // Elastic fleets: only active replicas take new work (draining replicas
  // finish what they already own; cold replicas have nothing to run on).
  if (cluster_ && !cluster_->is_routable(replica_id)) return;
  Replica& replica = replicas_[static_cast<std::size_t>(replica_id)];
  // Keep at most one request staged locally; binding happens as late as
  // possible so a faster replica can take the next arrival.
  if (replica.scheduler->num_waiting() > 0) return;
  for (RequestState* r : global_.pull(replica_id, 1)) {
    r->replica = replica_id;
    replica.scheduler->enqueue(r);
  }
}

void Simulator::try_schedule(ReplicaId replica_id) {
  Replica& replica = replicas_[static_cast<std::size_t>(replica_id)];
  // Synchronous pipeline: at most one micro-batch per stage in flight.
  while (replica.batches_in_flight < config_.parallel.pipeline_parallel) {
    pull_deferred(replica_id);
    StageScheduler::BatchHandle handle;
    if (free_handles_.empty()) {
      handle = static_cast<StageScheduler::BatchHandle>(in_flight_.size());
      in_flight_.emplace_back();
    } else {
      handle = free_handles_.back();
      free_handles_.pop_back();
    }
    InFlightBatch& record = in_flight_[static_cast<std::size_t>(handle)];
    replica.scheduler->schedule_into(record.spec, events_.now());
    if (record.spec.empty()) {
      free_handles_.push_back(handle);
      return;
    }
    record.agg = record.spec.aggregates();
    record.replica = replica_id;
    record.start_time = events_.now();
    record.flops = batch_flops(config_.model, record.agg);
    record.kv_utilization = replica.scheduler->blocks().utilization();
    record.live = true;

    ++replica.batches_in_flight;
    if (replica.stages[0].submit(handle)) start_stage(replica_id, 0, handle);
  }
}

void Simulator::start_stage(ReplicaId replica_id, StageId stage,
                            StageScheduler::BatchHandle handle) {
  Replica& replica = replicas_[static_cast<std::size_t>(replica_id)];
  const InFlightBatch& batch = in_flight_[static_cast<std::size_t>(handle)];
  VIDUR_CHECK_MSG(batch.live, "stage started for a retired batch handle");
  const StageTiming timing =
      replica.backend->stage_timing(batch.spec, batch.agg, stage);
  VIDUR_CHECK(timing.compute >= 0 && timing.comm >= 0);
  // Synchronous pipeline: the send occupies the stage. Asynchronous: the
  // stage frees after compute; the send delays only the downstream hand-off.
  Seconds busy = config_.async_pipeline_comm ? timing.compute : timing.total();
  const Seconds handoff_lag = config_.async_pipeline_comm ? timing.comm : 0.0;
  if (stage == 0) busy += replica.backend->cpu_overhead(batch.spec);
  if (config_.collect_operator_metrics)
    metrics_.record_operators(
        replica.backend->stage_breakdown(batch.spec, stage).per_op);
  SimEvent ev;
  ev.kind = EventKind::kStageEnd;
  ev.replica = replica_id;
  ev.stage = stage;
  ev.handle = handle;
  ev.comm_time = handoff_lag;
  events_.schedule_event(events_.now() + busy, ev);
}

void Simulator::on_stage_end(ReplicaId replica_id, StageId stage,
                             StageScheduler::BatchHandle handle,
                             Seconds comm_time) {
  Replica& replica = replicas_[static_cast<std::size_t>(replica_id)];

  // Advance this stage's queue.
  const auto next = replica.stages[static_cast<std::size_t>(stage)].complete();
  if (next >= 0) start_stage(replica_id, stage, next);

  if (stage + 1 < config_.parallel.pipeline_parallel) {
    if (comm_time > 0) {
      // Asynchronous send: activations arrive downstream after the wire
      // delay, while this stage is already free for its next micro-batch.
      SimEvent ev;
      ev.kind = EventKind::kDeliverToStage;
      ev.replica = replica_id;
      ev.stage = stage + 1;
      ev.handle = handle;
      events_.schedule_event(events_.now() + comm_time, ev);
    } else {
      deliver_to_stage(replica_id, stage + 1, handle);
    }
  } else {
    finish_batch(replica_id, handle);
  }
  // Stage 0 freeing up or a batch completing can unblock scheduling.
  try_schedule(replica_id);
}

void Simulator::deliver_to_stage(ReplicaId replica_id, StageId stage,
                                 StageScheduler::BatchHandle handle) {
  Replica& replica = replicas_[static_cast<std::size_t>(replica_id)];
  if (replica.stages[static_cast<std::size_t>(stage)].submit(handle))
    start_stage(replica_id, stage, handle);
}

void Simulator::finish_batch(ReplicaId replica_id,
                             StageScheduler::BatchHandle handle) {
  Replica& replica = replicas_[static_cast<std::size_t>(replica_id)];
  VIDUR_CHECK(handle >= 0 &&
              static_cast<std::size_t>(handle) < in_flight_.size());
  InFlightBatch& batch = in_flight_[static_cast<std::size_t>(handle)];
  VIDUR_CHECK_MSG(batch.live, "batch finished twice for one handle");

  BatchRecord record;
  record.replica = replica_id;
  record.start_time = batch.start_time;
  record.end_time = events_.now();
  record.q_tokens = batch.agg.total_q;
  record.batch_size = batch.spec.size();
  record.flops = batch.flops;
  record.hbm_bytes_per_gpu = batch_hbm_bytes_per_gpu(
      config_.model, config_.parallel.tensor_parallel,
      config_.parallel.pipeline_parallel, batch.agg);
  record.kv_utilization = batch.kv_utilization;
  metrics_.record_batch(record);

  const auto finished = replica.scheduler->on_batch_end(batch.spec,
                                                        events_.now());
  remaining_requests_ -= finished.size();
  last_batch_end_ = events_.now();
  if (is_prefill_replica(replica_id)) migrate_prefilled(replica_id, batch.spec);
  --replica.batches_in_flight;
  batch.live = false;
  free_handles_.push_back(handle);
  // A draining replica that just ran dry hands its slot back.
  if (cluster_ && replica.batches_in_flight == 0 &&
      replica.scheduler->outstanding() == 0)
    cluster_->notify_idle(replica_id);
}

void Simulator::migrate_prefilled(ReplicaId replica_id,
                                  const BatchSpec& batch) {
  ReplicaScheduler& scheduler =
      *replicas_[static_cast<std::size_t>(replica_id)].scheduler;
  for (const BatchItem& item : batch.items) {
    if (!item.completes_prefill) continue;
    RequestState* r = item.state;
    // Requests that finished at prefill (single output token), were
    // restarted concurrently, or already left the scheduler are not
    // migrated.
    if (r == nullptr || !r->admitted || !r->prefill_complete() ||
        r->finished())
      continue;
    scheduler.extract(r);
    SimEvent ev;
    ev.kind = EventKind::kMigrated;
    ev.request = r;
    events_.schedule_event(events_.now() + kv_transfer_time(*r), ev);
  }
}

void Simulator::on_migrated(RequestState* request) {
  // Least-outstanding routing among decode replicas.
  const auto outstanding = [this](ReplicaId id) {
    return replicas_[static_cast<std::size_t>(id)].scheduler->outstanding();
  };
  ReplicaId best = config_.disagg.num_prefill_replicas;
  int best_count = outstanding(best);
  for (ReplicaId r = best + 1; r < config_.parallel.num_replicas; ++r) {
    const int count = outstanding(r);
    if (count < best_count) {
      best = r;
      best_count = count;
    }
  }
  request->replica = best;
  replicas_[static_cast<std::size_t>(best)].scheduler->enqueue(request);
  try_schedule(best);
}

Seconds Simulator::kv_transfer_time(const RequestState& request) const {
  const auto bytes = static_cast<double>(request.kv_context) *
                     static_cast<double>(config_.model.kv_bytes_per_token());
  return bytes / (config_.disagg.transfer_bandwidth_gbps * 1e9) +
         config_.disagg.transfer_latency;
}

const std::vector<int>& Simulator::outstanding_counts(int count) const {
  outstanding_scratch_.clear();
  outstanding_scratch_.reserve(static_cast<std::size_t>(count));
  for (int r = 0; r < count; ++r)
    outstanding_scratch_.push_back(
        replicas_[static_cast<std::size_t>(r)].scheduler->outstanding());
  return outstanding_scratch_;
}

}  // namespace vidur
