#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/rolling.h"
#include "obs/trace.h"
#include "scheduler/disagg_policies.h"

namespace vidur {

namespace {

int count_slots(const SimulationConfig& c) {
  return c.pools.empty() ? c.parallel.num_replicas : total_pool_slots(c.pools);
}

/// Routing-domain size of the global scheduler. Under legacy
/// disaggregation, arrivals are only routed among the prefill replicas;
/// decode replicas receive work via KV-transfer hand-off. Pool deployments
/// route over every slot and mask decode/inactive slots out instead.
int routing_domain(const SimulationConfig& c) {
  if (!c.pools.empty()) return total_pool_slots(c.pools);
  return c.disagg.enabled() ? c.disagg.num_prefill_replicas
                            : c.parallel.num_replicas;
}

NodeSpec pool_node(const SimulationConfig& c, const PoolSpec& pool) {
  NodeSpec node = c.node;
  node.sku = sku_by_name(pool.sku_name);
  return node;
}

MemoryPlan primary_memory_plan(const SimulationConfig& c) {
  if (c.pools.empty())
    return plan_memory(c.model, c.node, c.parallel, c.memory_utilization);
  return plan_memory(c.model, pool_node(c, c.pools[0]), c.pools[0].parallel,
                     c.memory_utilization);
}

/// Resources the metrics collector accounts against. Heterogeneous pools
/// are folded to per-REPLICA means with gpus_per_replica pinned at 1, so
/// every num_replicas x gpus_per_replica x rate product equals the exact
/// fleet total (no GPUs lost to integer rounding); for homogeneous pools
/// this is arithmetically identical to the per-GPU form. Fleet-level
/// MFU/MBU/energy are still slot-weighted averages across mixed SKUs; the
/// exact per-pool numbers come from MetricsCollector::set_pools (wired in
/// setup_observability), GPU-hours and cost from the scaling report.
ClusterResources cluster_resources(const SimulationConfig& c) {
  if (c.pools.empty()) {
    return ClusterResources{
        .num_replicas = c.parallel.num_replicas,
        .gpus_per_replica = c.parallel.gpus_per_replica(),
        .peak_flops_per_gpu = c.node.sku.peak_flops(),
        .hbm_bytes_per_sec_per_gpu = c.node.sku.hbm_bytes_per_sec(),
        .idle_watts_per_gpu = c.node.sku.idle_watts,
        .peak_watts_per_gpu = c.node.sku.peak_watts};
  }
  double slots = 0, flops = 0, bw = 0, idle = 0, peak = 0;
  for (const PoolSpec& pool : c.pools) {
    const SkuSpec sku = sku_by_name(pool.sku_name);
    const double n = pool.slots();
    const double g = pool.gpus_per_replica();
    slots += n;
    flops += n * g * sku.peak_flops();
    bw += n * g * sku.hbm_bytes_per_sec();
    idle += n * g * sku.idle_watts;
    peak += n * g * sku.peak_watts;
  }
  return ClusterResources{
      .num_replicas = static_cast<int>(slots),
      .gpus_per_replica = 1,  // rates below are per replica, not per GPU
      .peak_flops_per_gpu = flops / slots,
      .hbm_bytes_per_sec_per_gpu = bw / slots,
      .idle_watts_per_gpu = idle / slots,
      .peak_watts_per_gpu = peak / slots};
}

}  // namespace

thread_local Simulator::SimShard* Simulator::tls_shard_ = nullptr;

Seconds Simulator::sim_now() const {
  return tls_shard_ != nullptr ? tls_shard_->events.now() : events_.now();
}

EventQueue& Simulator::local_events() {
  return tls_shard_ != nullptr ? tls_shard_->events : events_;
}

TraceRecorder* Simulator::local_trace() {
  if (tls_shard_ != nullptr)
    return trace_rec_ != nullptr ? &tls_shard_->staging : nullptr;
  return trace_rec_;
}

Simulator::Simulator(SimulationConfig config, Trace trace,
                     BackendFactory factory)
    : config_(std::move(config)),
      trace_(std::move(trace)),
      num_slots_(count_slots(config_)),
      global_(config_.global_scheduler, routing_domain(config_)),
      memory_plan_(primary_memory_plan(config_)),
      metrics_(cluster_resources(config_)) {
  config_.model.validate();
  config_.scheduler.validate();
  VIDUR_CHECK(factory != nullptr);
  if (pool_mode()) {
    validate_pools(config_.pools);
    VIDUR_CHECK_MSG(!config_.disagg.enabled(),
                    "pool deployments define disaggregation through pool "
                    "roles; leave disagg.num_prefill_replicas at 0 (the "
                    "transfer_* fields still parameterize KV hand-off)");
    VIDUR_CHECK_MSG(!config_.autoscale.enabled(),
                    "pool deployments autoscale per pool; leave the "
                    "top-level autoscale disabled");
    VIDUR_CHECK(config_.disagg.transfer_bandwidth_gbps > 0);
    VIDUR_CHECK(config_.disagg.transfer_latency >= 0);
  } else {
    config_.parallel.validate();
    if (config_.autoscale.enabled()) {
      config_.autoscale.validate();
      VIDUR_CHECK_MSG(!config_.disagg.enabled(),
                      "autoscaling is not supported with legacy "
                      "disaggregated serving; use a pool deployment with "
                      "prefill/decode pools instead");
    }
    if (config_.disagg.enabled()) {
      VIDUR_CHECK_MSG(
          config_.disagg.num_prefill_replicas < config_.parallel.num_replicas,
          "disaggregation requires at least one decode replica");
      VIDUR_CHECK(config_.disagg.transfer_bandwidth_gbps > 0);
      VIDUR_CHECK(config_.disagg.transfer_latency >= 0);
    }
  }

  VIDUR_CHECK_MSG(config_.threads >= 1,
                  "execution.threads must be >= 1 (got " << config_.threads
                                                         << ")");
  if (config_.threads > 1) {
    // KV hand-offs between roles have zero lookahead (a prefill's end is
    // the decode's input), so disaggregated serving cannot shard; operator
    // metrics aggregate into one collector from every stage execution.
    VIDUR_CHECK_MSG(!config_.disagg.enabled(),
                    "execution.threads > 1 is not supported with legacy "
                    "disaggregated serving; run with threads = 1");
    VIDUR_CHECK_MSG(!(pool_mode() && pools_disaggregated(config_.pools)),
                    "execution.threads > 1 is not supported with "
                    "role-disaggregated pools; run with threads = 1");
    VIDUR_CHECK_MSG(!config_.collect_operator_metrics,
                    "execution.threads > 1 is not supported with operator "
                    "metrics collection; run with threads = 1");
  }

  if (pool_mode()) {
    pool_plans_.push_back(memory_plan_);  // pool 0 is the primary plan
    for (std::size_t p = 1; p < config_.pools.size(); ++p)
      pool_plans_.push_back(plan_memory(config_.model,
                                        pool_node(config_, config_.pools[p]),
                                        config_.pools[p].parallel,
                                        config_.memory_utilization));
    pool_of_slot_ = pool_slot_layout(config_.pools);
  }

  replicas_.reserve(static_cast<std::size_t>(num_slots_));
  for (ReplicaId r = 0; r < num_slots_; ++r) {
    Replica replica;
    const MemoryPlan& plan =
        pool_mode() ? pool_plans_[static_cast<std::size_t>(
                          pool_of_slot_[static_cast<std::size_t>(r)])]
                    : memory_plan_;
    const bool disaggregated =
        pool_mode() ? pools_disaggregated(config_.pools)
                    : config_.disagg.enabled();
    if (!disaggregated) {
      replica.scheduler = make_replica_scheduler(config_.scheduler, plan);
    } else if (is_prefill_replica(r)) {
      replica.scheduler = std::make_unique<DisaggPrefillScheduler>(
          config_.scheduler, plan);
    } else {
      replica.scheduler = std::make_unique<DisaggDecodeScheduler>(
          config_.scheduler, plan);
    }
    if (config_.prefix_cache.enabled) {
      config_.prefix_cache.validate();
      const long capacity = static_cast<long>(
          config_.prefix_cache.capacity_fraction *
          static_cast<double>(plan.num_kv_blocks));
      replica.cache = std::make_unique<PrefixCache>(capacity, plan.block_size);
      replica.scheduler->set_prefix_cache(replica.cache.get());
    }
    replica.backend = factory(r);
    VIDUR_CHECK(replica.backend != nullptr);
    replica.stages.resize(
        static_cast<std::size_t>(parallel_of(r).pipeline_parallel));
    replicas_.push_back(std::move(replica));
  }

  if (config_.global_scheduler == GlobalSchedulerKind::kCacheAware &&
      config_.prefix_cache.enabled) {
    // Read-only probe: routing must not perturb cache stats or LRU order.
    global_.set_cache_probe([this](const Request& req, ReplicaId r) {
      const PrefixCache* cache =
          replicas_[static_cast<std::size_t>(r)].cache.get();
      return cache == nullptr ? TokenCount{0} : cache->probe(req);
    });
  }

  metrics_.set_tenants(config_.tenants);

  const bool elastic = pool_mode() ? any_pool_autoscaled(config_.pools)
                                   : config_.autoscale.enabled();
  if (elastic) {
    ClusterManager::Hooks hooks;
    // outstanding() already covers requests inside in-flight batches (they
    // stay in the running set until their batch ends), so it serves both
    // as the sizing signal and as the drain-idle predicate.
    hooks.replica_load = [this](ReplicaId r) {
      return replicas_[static_cast<std::size_t>(r)].scheduler->outstanding();
    };
    hooks.parked_requests = [this] {
      return static_cast<int>(global_.num_parked());
    };
    hooks.work_remaining = [this] { return remaining_requests_ > 0; };
    // Every activation after a fault closes the oldest open capacity hole
    // (FIFO): MTTR is the mean open->close interval. Load-driven scale-ups
    // count too — any new capacity repairs the hole.
    hooks.on_activated = [this](ReplicaId r) {
      if (!pending_repairs_.empty()) {
        mttr_sum_ += events_.now() - pending_repairs_.front();
        pending_repairs_.pop_front();
        ++num_repairs_;
      }
      try_schedule(r);
    };
    hooks.on_draining = [this](ReplicaId r) { reroute_waiting(r); };
    // Slot released (drain completed or failed): tear down the replica's
    // prefix-cache pool so cached blocks never leak across scale-downs.
    hooks.on_decommissioned = [this](ReplicaId r) {
      replicas_[static_cast<std::size_t>(r)].scheduler->release_cached();
    };
    hooks.replica_kv_utilization = [this](ReplicaId r) {
      return replicas_[static_cast<std::size_t>(r)]
          .scheduler->blocks()
          .utilization();
    };
    if (pool_mode()) {
      // Cost-aware placement ranks pools by $/SLO-point; the capacity side
      // comes from the spec (estimator-derived by VidurSession). If any
      // pool left it unset, fall back to the SKU's peak FLOPs for every
      // pool, so the ranking never mixes sources.
      bool all_caps = true;
      for (const PoolSpec& pool : config_.pools)
        all_caps &= pool.capacity_qps > 0;
      std::vector<ClusterManager::ManagedPool> managed;
      for (const PoolSpec& pool : config_.pools) {
        ClusterManager::ManagedPool m;
        m.name = pool.name;
        m.sku = pool.sku_name;
        m.role = pool.role;
        m.slots = pool.slots();
        m.autoscale = pool.autoscale;
        m.gpus_per_replica = pool.gpus_per_replica();
        m.cost_per_gpu_hour = pool.effective_cost_per_gpu_hour();
        m.capacity_qps = all_caps
                             ? pool.capacity_qps
                             : sku_by_name(pool.sku_name).peak_fp16_tflops;
        managed.push_back(std::move(m));
      }
      cluster_ = std::make_unique<ClusterManager>(std::move(managed),
                                                  &events_, std::move(hooks));
    } else {
      // The homogeneous fleet is the single-pool special case; carrying
      // the SKU and rates here gives legacy runs the same per-pool report
      // shape as heterogeneous ones.
      ClusterManager::ManagedPool m;
      m.sku = config_.node.sku.name;
      m.slots = config_.parallel.num_replicas;
      m.autoscale = config_.autoscale;
      m.gpus_per_replica = config_.parallel.gpus_per_replica();
      m.cost_per_gpu_hour = config_.node.sku.cost_per_hour;
      std::vector<ClusterManager::ManagedPool> managed;
      managed.push_back(std::move(m));
      cluster_ = std::make_unique<ClusterManager>(std::move(managed),
                                                  &events_, std::move(hooks));
    }
  }

  // Request states must never reallocate: schedulers hold raw pointers.
  states_.reserve(trace_.size());
  for (const Request& req : trace_) {
    RequestState state;
    state.request = req;
    state.record.id = req.id;
    state.record.tenant = req.tenant;
    state.record.arrival_time = req.arrival_time;
    state.record.prefill_tokens = req.prefill_tokens;
    state.record.decode_tokens = req.decode_tokens;
    // One slot per output token: token-time appends never reallocate.
    state.record.token_times.reserve(
        static_cast<std::size_t>(req.decode_tokens));
    states_.push_back(std::move(state));
  }

  setup_observability();
  setup_faults();
}

void Simulator::setup_faults() {
  if (!config_.faults.enabled()) return;
  config_.faults.validate();
  VIDUR_CHECK_MSG(!config_.faults.any_kills() || cluster_ != nullptr,
                  "fault profiles with crashes or spot preemption require an "
                  "elastic fleet (the autoscaler repairs the capacity hole); "
                  "degrade-only profiles work on static fleets");
  // Distinct lineage from the injector's per-profile streams (which fork
  // off the seed directly): recovery jitter draws never perturb fault
  // timing, and vice versa.
  retry_rng_ = Rng(config_.faults.seed ^ 0x7265747279ULL);
  TenantId max_id = -1;
  for (const TenantInfo& t : config_.tenants) max_id = std::max(max_id, t.id);
  if (max_id >= 0)
    tenant_priority_by_id_.assign(static_cast<std::size_t>(max_id) + 1, 0);
  for (const TenantInfo& t : config_.tenants)
    if (t.id >= 0)
      tenant_priority_by_id_[static_cast<std::size_t>(t.id)] = t.priority;

  FaultInjector::Hooks hooks;
  hooks.active_replicas = [this](const std::string& pool) {
    std::vector<ReplicaId> out;
    const bool fleet = pool.empty() || pool == "fleet";
    for (ReplicaId r = 0; r < num_slots_; ++r) {
      if (!fleet && (!pool_mode() || pool_of(r).name != pool)) continue;
      if (cluster_ && !cluster_->is_routable(r)) continue;
      out.push_back(r);
    }
    return out;
  };
  hooks.kill = [this](ReplicaId r, Seconds hold_until, bool spot) {
    kill_replica(r, hold_until, spot);
  };
  hooks.drain = [this](ReplicaId r) {
    if (cluster_) cluster_->drain_replica(r);
  };
  hooks.set_slow_factor = [this](ReplicaId r, double factor) {
    replicas_[static_cast<std::size_t>(r)].slow_factor = factor;
  };
  hooks.work_remaining = [this] { return remaining_requests_ > 0; };
  injector_ = std::make_unique<FaultInjector>(config_.faults, &events_,
                                              std::move(hooks));
  injector_->set_trace(trace_rec_);
}

void Simulator::kill_replica(ReplicaId replica_id, Seconds hold_until,
                             bool spot) {
  VIDUR_CHECK(cluster_ != nullptr);
  const ReplicaState st = cluster_->state(replica_id);
  // A drained-out spot victim (its slot already released before the notice
  // expired) has nothing left to kill; the hold is forfeited with it.
  if (st != ReplicaState::kActive && st != ReplicaState::kDraining) return;
  Replica& replica = replicas_[static_cast<std::size_t>(replica_id)];
  // Cancel live batches first: their pipeline events still drain (the
  // stage queues must advance) but produce no metrics and no progress.
  for (InFlightBatch& b : replica.in_flight) {
    if (!b.live || b.cancelled) continue;
    b.cancelled = true;
    if (b.trace_seq >= 0) {
      trace_emit(trace_rec_, TraceEventKind::kBatchEnd, events_.now(),
                 replica_id, b.trace_seq, b.spec.size());
      b.trace_seq = -1;
    }
  }
  std::vector<RequestState*> victims = replica.scheduler->fail_all();
  replica.slow_factor = 1.0;
  // fail_replica's on_decommissioned hook tears down the prefix-cache pool
  // (the replica's cached KV dies with it), after fail_all dropped pins.
  cluster_->fail_replica(replica_id, hold_until);
  trace_emit(trace_rec_, TraceEventKind::kReplicaFault, events_.now(),
             replica_id, -1, static_cast<std::int64_t>(victims.size()), 0,
             spot ? 2 : 0);
  pending_repairs_.push_back(events_.now());
  for (RequestState* r : victims) {
    rolling_pool_delta(replica_id, -1);
    recover_request(r, replica_id);
  }
}

void Simulator::recover_request(RequestState* request, ReplicaId replica_id) {
  request->in_flight = false;
  request->replica = -1;
  RequestRecord& rec = request->record;
  if (!request->admitted) {
    // Queued casualty: nothing this replica computed is lost. A prefilled
    // hand-off waiting at a dead decode replica keeps its context (the KV
    // travels with it, paying the transfer again); anything else re-enters
    // cold — cache-served progress lived in the dead replica's pool.
    ++rec.num_handoffs;
    ++num_handoffs_;
    trace_emit(trace_rec_, TraceEventKind::kRequestRetry, events_.now(),
               replica_id, rec.id, rec.num_handoffs, 0, 2);
    if (pool_mode() && pool_of(replica_id).role == PoolRole::kDecode &&
        request->prefill_complete()) {
      trace_emit(trace_rec_, TraceEventKind::kMigrateStart, events_.now(),
                 replica_id, rec.id, request->kv_context);
      SimEvent ev;
      ev.kind = EventKind::kMigrated;
      ev.request = request;
      events_.schedule_event(events_.now() + kv_transfer_time(*request), ev);
      return;
    }
    request->prefill_done = 0;
    request->kv_context = 0;
    request->kv_cached = 0;
    request->kv_capacity = 0;
    request->prefix_checked = false;
    reenter_request(request);
    return;
  }
  // Started casualty: computed work dies with the replica's KV. The cached
  // prefix (kv_cached) was never computed here, so the re-prefill bill is
  // the cold part only; produced decode tokens are discarded outright.
  tokens_reprefilled_ += request->prefill_done - request->kv_cached;
  decode_tokens_discarded_ += request->decode_done;
  request->restart();
  request->in_flight = false;
  const RecoveryPolicy& policy = config_.faults.recovery;
  if (rec.num_retries >= policy.max_attempts) {
    trace_emit(trace_rec_, TraceEventKind::kRequestRetry, events_.now(),
               replica_id, rec.id, rec.num_retries, 0, 1);
    rec.lost = true;
    --remaining_requests_;
    ++num_lost_;
    rolling_request_delta(*request, -1);
    return;
  }
  ++rec.num_retries;
  ++num_retries_;
  const double exponent = static_cast<double>(rec.num_retries - 1);
  const Seconds delay =
      policy.backoff_base_s * std::pow(policy.backoff_multiplier, exponent) *
      (1.0 + policy.jitter * retry_rng_.uniform());
  trace_emit(trace_rec_, TraceEventKind::kRequestRetry, events_.now(),
             replica_id, rec.id, rec.num_retries,
             static_cast<std::int64_t>(delay * 1e9), 0);
  events_.schedule(events_.now() + delay,
                   [this, request] { reenter_request(request); });
}

void Simulator::reenter_request(RequestState* request) {
  if (maybe_shed(request)) return;
  route_request(request);
}

bool Simulator::maybe_shed(RequestState* request) {
  const ShedPolicy& shed = config_.faults.shed;
  if (!shed.enabled() || cluster_ == nullptr) return false;
  const int active = cluster_->num_active();
  if (active >= shed.min_active_replicas) return false;
  const int priority = tenant_priority(request->record.tenant);
  if (priority > shed.max_shed_priority) return false;
  trace_emit(trace_rec_, TraceEventKind::kRequestShed, events_.now(), -1,
             request->record.id, priority, active, 0);
  request->record.shed = true;
  --remaining_requests_;
  ++num_shed_;
  rolling_request_delta(*request, -1);
  return true;
}

int Simulator::tenant_priority(TenantId tenant) const {
  if (tenant < 0 ||
      static_cast<std::size_t>(tenant) >= tenant_priority_by_id_.size())
    return 0;
  return tenant_priority_by_id_[static_cast<std::size_t>(tenant)];
}

void Simulator::setup_observability() {
  trace_rec_ = config_.obs.trace;
  if (config_.obs.registry != nullptr) {
    registry_ = config_.obs.registry;
  } else {
    owned_registry_ = std::make_unique<MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  ctr_arrivals_ = registry_->counter("sim.requests_arrived");
  ctr_completions_ = registry_->counter("sim.requests_completed");
  ctr_batches_ = registry_->counter("sim.batches");
  ctr_migrations_ = registry_->counter("sim.migrations");
  ctr_reroutes_ = registry_->counter("sim.reroutes");

  // The registry entries exist up front (snapshots always carry the keys),
  // but each scheduler counts into its own replica's tallies — shard
  // threads then never race on the shared counters; run() folds the
  // tallies in after the last event.
  registry_->counter("scheduler.preemptions");
  registry_->counter("scheduler.admissions");
  for (ReplicaId r = 0; r < num_slots_; ++r) {
    Replica& replica = replicas_[static_cast<std::size_t>(r)];
    replica.scheduler->set_obs(r, trace_rec_, &replica.preemptions,
                               &replica.admissions);
  }
  if (cluster_) cluster_->set_obs(trace_rec_, registry_);

  // Exact per-pool attribution: each pool's batches accumulate against its
  // own SKU rates. Pool deployments carry their layout; a homogeneous
  // elastic fleet is the single-pool case (its scaling report has one pool
  // entry). Plain static fleets have no pool breakout to fill.
  if (pool_mode()) {
    std::vector<PoolResources> resources;
    for (const PoolSpec& pool : config_.pools) {
      const SkuSpec sku = sku_by_name(pool.sku_name);
      PoolResources p;
      p.name = pool.name;
      p.gpus_per_replica = pool.gpus_per_replica();
      p.peak_flops_per_gpu = sku.peak_flops();
      p.hbm_bytes_per_sec_per_gpu = sku.hbm_bytes_per_sec();
      p.idle_watts_per_gpu = sku.idle_watts;
      p.peak_watts_per_gpu = sku.peak_watts;
      resources.push_back(std::move(p));
    }
    metrics_.set_pools(std::move(resources), pool_of_slot_);
  } else if (cluster_) {
    PoolResources p;
    p.name = config_.node.sku.name;
    p.gpus_per_replica = config_.parallel.gpus_per_replica();
    p.peak_flops_per_gpu = config_.node.sku.peak_flops();
    p.hbm_bytes_per_sec_per_gpu = config_.node.sku.hbm_bytes_per_sec();
    p.idle_watts_per_gpu = config_.node.sku.idle_watts;
    p.peak_watts_per_gpu = config_.node.sku.peak_watts;
    std::vector<PoolResources> resources;
    resources.push_back(std::move(p));
    metrics_.set_pools(
        std::move(resources),
        std::vector<int>(static_cast<std::size_t>(num_slots_), 0));
  }

  // The tenant -> SLO map serves both the rolling windows and the
  // resilience SLO-attainment split, so it is built unconditionally.
  {
    TenantId max_id = -1;
    for (const TenantInfo& t : config_.tenants)
      max_id = std::max(max_id, t.id);
    if (max_id >= 0)
      tenant_slo_by_id_.assign(static_cast<std::size_t>(max_id) + 1, nullptr);
    for (const TenantInfo& t : config_.tenants)
      if (t.id >= 0) tenant_slo_by_id_[static_cast<std::size_t>(t.id)] = &t.slo;
  }

  if (config_.obs.rolling_window_s > 0) {
    std::vector<std::string> names;
    names.push_back("cluster");
    TenantId max_id = -1;
    for (const TenantInfo& t : config_.tenants)
      max_id = std::max(max_id, t.id);
    if (max_id >= 0)
      tenant_track_by_id_.assign(static_cast<std::size_t>(max_id) + 1, -1);
    for (const TenantInfo& t : config_.tenants) {
      if (t.id < 0) continue;
      tenant_track_by_id_[static_cast<std::size_t>(t.id)] =
          static_cast<int>(names.size());
      names.push_back("tenant:" + t.name);
    }
    if (pool_mode()) {
      pool_track_base_ = static_cast<int>(names.size());
      for (const PoolSpec& pool : config_.pools)
        names.push_back("pool:" + pool.name);
    }
    rolling_ = std::make_unique<RollingCollector>(config_.obs.rolling_window_s,
                                                  std::move(names));
  }
}

int Simulator::tenant_track(TenantId tenant) const {
  if (tenant < 0 ||
      static_cast<std::size_t>(tenant) >= tenant_track_by_id_.size())
    return -1;
  return tenant_track_by_id_[static_cast<std::size_t>(tenant)];
}

void Simulator::rolling_request_delta(const RequestState& request, int delta) {
  if (!rolling_) return;
  rolling_->on_queue_delta(0, events_.now(), delta);
  const int track = tenant_track(request.record.tenant);
  if (track >= 0) rolling_->on_queue_delta(track, events_.now(), delta);
}

void Simulator::rolling_pool_delta(ReplicaId replica_id, int delta) {
  if (!rolling_ || pool_track_base_ < 0) return;
  const int pool = pool_of_slot_[static_cast<std::size_t>(replica_id)];
  rolling_->on_queue_delta(pool_track_base_ + pool, events_.now(), delta);
}

void Simulator::rolling_completions(
    ReplicaId replica_id, const std::vector<RequestState*>& finished) {
  if (!rolling_ || finished.empty()) return;
  const Seconds now = events_.now();
  for (const RequestState* r : finished) {
    const RequestRecord& rec = r->record;
    Seconds worst_tbt = -1.0;  // < 0: fewer than two decode tokens
    for (std::size_t i = 1; i < rec.token_times.size(); ++i)
      worst_tbt =
          std::max(worst_tbt, rec.token_times[i] - rec.token_times[i - 1]);
    const SloSpec* slo =
        rec.tenant >= 0 &&
                static_cast<std::size_t>(rec.tenant) < tenant_slo_by_id_.size()
            ? tenant_slo_by_id_[static_cast<std::size_t>(rec.tenant)]
            : nullptr;
    int slo_state = -1;
    if (slo != nullptr && slo->enabled()) {
      bool met = true;
      if (slo->ttft_target > 0 && rec.ttft() > slo->ttft_target) met = false;
      if (slo->tbt_target > 0 && worst_tbt > slo->tbt_target) met = false;
      slo_state = met ? 1 : 0;
    }
    rolling_->on_completion(0, now, rec.ttft(), worst_tbt, slo_state);
    const int track = tenant_track(rec.tenant);
    if (track >= 0)
      rolling_->on_completion(track, now, rec.ttft(), worst_tbt, slo_state);
    if (pool_track_base_ >= 0) {
      const int pool = pool_of_slot_[static_cast<std::size_t>(replica_id)];
      rolling_->on_completion(pool_track_base_ + pool, now, rec.ttft(),
                              worst_tbt, slo_state);
    }
    rolling_request_delta(*r, -1);
    rolling_pool_delta(replica_id, -1);
  }
}

SimulationMetrics Simulator::run() {
  VIDUR_CHECK_MSG(!ran_, "Simulator::run() may only be called once");
  ran_ = true;

  remaining_requests_ = states_.size();
  if (cluster_) cluster_->start();
  if (injector_) injector_->start();

  // Sharded windowed engine eligibility: round-robin routing over a static
  // fleet is a pure counter, so every arrival's target is known up front.
  // Arrivals then seed per-replica shard queues and the stretches between
  // central events (fault edges here; routing decisions, autoscaler ticks
  // and KV migrations in general) advance shard-parallel. Any policy that
  // consults shared state at event time — elastic fleets, rolling windows,
  // cache/load-aware routing, disaggregation, operator metrics — keeps
  // every arrival central, and the run replays the legacy single-queue
  // order exactly.
  preroute_ = config_.global_scheduler == GlobalSchedulerKind::kRoundRobin &&
              cluster_ == nullptr && rolling_ == nullptr &&
              !config_.disagg.enabled() &&
              !(pool_mode() && pools_disaggregated(config_.pools)) &&
              !config_.collect_operator_metrics && num_slots_ > 0;
  if (preroute_) {
    shards_.resize(static_cast<std::size_t>(num_slots_));
    shard_batch_seq_.resize(static_cast<std::size_t>(num_slots_));
    for (ReplicaId r = 0; r < num_slots_; ++r) {
      SimShard& shard = shards_[static_cast<std::size_t>(r)];
      shard.replica = r;
      // Scheduler-level records (kScheduled, kCacheLookup, ...) follow the
      // batch records into the shard's staging stream; restored below.
      if (trace_rec_ != nullptr)
        replicas_[static_cast<std::size_t>(r)].scheduler->set_trace(
            &shard.staging);
    }
    // Arrivals are routed in the exact order the legacy queue would pop
    // them — (arrival_time, trace position) — so the round-robin counter
    // assigns every request the same target it always did.
    std::vector<std::size_t> order(states_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                       return states_[a].request.arrival_time <
                              states_[b].request.arrival_time;
                     });
    static const std::vector<bool> kEveryReplica;  // empty mask: all routable
    for (const std::size_t i : order) {
      RequestState& state = states_[i];
      const ReplicaId target = global_.route(
          &state, outstanding_counts(num_slots_), kEveryReplica);
      VIDUR_CHECK(target >= 0);
      SimEvent ev;
      ev.kind = EventKind::kArrival;
      ev.request = &state;
      shards_[static_cast<std::size_t>(target)].events.schedule_event(
          state.request.arrival_time, ev);
    }
    if (config_.threads > 1 && num_slots_ > 1)
      team_ = std::make_unique<SpinTeam>(static_cast<std::size_t>(
          std::min(config_.threads, num_slots_)));
  } else {
    for (RequestState& state : states_) {
      SimEvent ev;
      ev.kind = EventKind::kArrival;
      ev.request = &state;
      events_.schedule_event(state.request.arrival_time, ev);
    }
  }

  // One conservative round per central timestamp: every shard first
  // advances privately to (not including) the next central event's time,
  // the staged effects merge in global order, then the central events at
  // that time run. Without pre-routed shards the shard phase is empty and
  // this is exactly the legacy single-queue loop.
  for (;;) {
    const Seconds window =
        events_.empty() ? kInfiniteTime : events_.next_time();
    if (preroute_) shard_round(window);
    if (events_.empty() || events_.next_time() > config_.max_sim_time) break;
    do {
      events_.run_next([this](const SimEvent& ev) { dispatch(ev); });
    } while (!events_.empty() && events_.next_time() == window);
  }
  if (preroute_ && trace_rec_ != nullptr)
    for (Replica& replica : replicas_) replica.scheduler->set_trace(trace_rec_);

  for (const RequestState& state : states_)
    metrics_.record_request(state.record);
  // Replica-private tallies fold into the shared counters once, after the
  // last event: shard threads never touch the registry.
  {
    Counter* preemptions = registry_->counter("scheduler.preemptions");
    Counter* admissions = registry_->counter("scheduler.admissions");
    for (const Replica& replica : replicas_) {
      preemptions->value += replica.preemptions.value;
      admissions->value += replica.admissions.value;
    }
    for (const SimShard& shard : shards_)
      ctr_arrivals_->value += static_cast<std::uint64_t>(shard.arrivals);
  }
  // The run's horizon is the latest clock of any timeline (sharded runs:
  // the last shard event usually outlasts the last central one).
  std::uint64_t num_events = events_.num_processed();
  Seconds horizon = events_.now();
  for (const SimShard& shard : shards_) {
    num_events += shard.events.num_processed();
    horizon = std::max(horizon, shard.events.now());
  }
  // Elastic runs leave one trailing autoscaler tick behind the last batch
  // end; account the run up to the last real progress instead so the
  // static-vs-autoscaled makespan/cost comparison stays apples-to-apples.
  const Seconds end_time = cluster_ && remaining_requests_ == 0
                               ? last_batch_end_
                               : horizon;
  // The scaling report feeds finalize() so idle energy is billed on the
  // fleet's actual paid GPU-time, not the static slot ceiling. Pool
  // deployments carry their per-slot rates in the manager (or the static
  // pool report); homogeneous fleets bill at the single SKU's rate.
  const ClusterScalingReport report =
      cluster_ ? cluster_->report(end_time)
      : pool_mode()
          ? static_pools_report(config_.pools, end_time)
          : static_fleet_report(config_.parallel.num_replicas, end_time,
                                config_.parallel.gpus_per_replica(),
                                config_.node.sku.cost_per_hour);
  // Final registry state: per-request latency histograms plus engine-level
  // gauges, then the snapshot travels with the metrics.
  LatencyHistogram* ttft_hist = registry_->histogram("request.ttft_s");
  LatencyHistogram* tbt_hist = registry_->histogram("request.tbt_worst_s");
  LatencyHistogram* e2e_hist = registry_->histogram("request.e2e_s");
  for (const RequestState& state : states_) {
    const RequestRecord& rec = state.record;
    if (!rec.completed()) continue;
    ttft_hist->record(rec.ttft());
    e2e_hist->record(rec.e2e_latency());
    Seconds worst_tbt = -1.0;
    for (std::size_t i = 1; i < rec.token_times.size(); ++i)
      worst_tbt =
          std::max(worst_tbt, rec.token_times[i] - rec.token_times[i - 1]);
    if (worst_tbt >= 0) tbt_hist->record(worst_tbt);
  }
  registry_->counter("sim.events")->value = num_events;
  registry_->gauge("sim.makespan_s")->set(end_time);

  SimulationMetrics metrics = metrics_.finalize(end_time, report);
  if (config_.prefix_cache.enabled)
    aggregate_prefix_cache(metrics.prefix_cache);
  if (config_.faults.enabled()) aggregate_resilience(metrics.resilience);
  metrics.num_sim_events = num_events;
  metrics.registry = registry_->snapshot();
  if (rolling_) metrics.rolling = rolling_->finalize(end_time);
  return metrics;
}

void Simulator::shard_round(Seconds window) {
  dirty_scratch_.clear();
  for (int r = 0; r < num_slots_; ++r) {
    const EventQueue& queue = shards_[static_cast<std::size_t>(r)].events;
    if (queue.empty()) continue;
    const Seconds t = queue.next_time();
    if (t < window && t <= config_.max_sim_time) dirty_scratch_.push_back(r);
  }
  if (dirty_scratch_.empty()) return;
  if (team_ != nullptr && dirty_scratch_.size() > 1) {
    // Strided assignment over the dirty list. Which worker runs which
    // shard never affects the result: everything a shard touches is
    // private, and merge_round imposes the global order afterwards.
    const std::size_t stride = team_->size();
    team_->run([this, window, stride](std::size_t worker) {
      for (std::size_t i = worker; i < dirty_scratch_.size(); i += stride)
        run_shard(shards_[static_cast<std::size_t>(dirty_scratch_[i])],
                  window);
    });
  } else {
    for (const int r : dirty_scratch_)
      run_shard(shards_[static_cast<std::size_t>(r)], window);
  }
  merge_round();
}

void Simulator::run_shard(SimShard& shard, Seconds window) {
  SimShard* const prev = tls_shard_;
  tls_shard_ = &shard;
  try {
    // Strictly below the window: a shard event at exactly the window time
    // must observe the central events there first (a degrade edge at t
    // changes the slow factor for the batch starting at t, as it would in
    // the single-queue order).
    while (!shard.events.empty()) {
      const Seconds t = shard.events.next_time();
      if (t >= window || t > config_.max_sim_time) break;
      shard.events.run_next([this](const SimEvent& ev) { dispatch(ev); });
    }
  } catch (...) {
    tls_shard_ = prev;
    throw;
  }
  tls_shard_ = prev;
}

void Simulator::merge_round() {
  // k-way scan by (time, shard, stream position): with a handful of dirty
  // shards per round a linear scan beats a heap, and the tie-break makes
  // the merged order total — the source of the bit-identical-at-any-
  // thread-count guarantee.
  const std::size_t n = shards_.size();
  merge_rec_cur_.assign(n, 0);
  merge_done_cur_.assign(n, 0);
  for (;;) {
    std::size_t best = n;
    bool best_done = false;
    Seconds best_time = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      SimShard& shard = shards_[r];
      const std::size_t rec = merge_rec_cur_[r];
      const std::size_t done = merge_done_cur_[r];
      const std::size_t num_rec = shard.staging.staged().size();
      bool is_done;
      Seconds t;
      // Within one shard the two streams interleave positionally: the op
      // staged at trace position p precedes the record at p (both streams
      // are time-nondecreasing, so no time comparison is needed).
      if (done < shard.done.size() && shard.done[done].trace_pos <= rec) {
        is_done = true;
        t = shard.done[done].record.end_time;
      } else if (rec < num_rec) {
        is_done = false;
        t = shard.staging.staged()[rec].time;
      } else if (done < shard.done.size()) {
        is_done = true;
        t = shard.done[done].record.end_time;
      } else {
        continue;
      }
      if (best == n || t < best_time) {
        best = r;
        best_done = is_done;
        best_time = t;
      }
    }
    if (best == n) break;
    SimShard& shard = shards_[best];
    if (best_done) {
      const ShardDone& op = shard.done[merge_done_cur_[best]++];
      metrics_.record_batch(op.record);
      ctr_batches_->inc();
      ctr_completions_->inc(static_cast<std::uint64_t>(op.completions));
      remaining_requests_ -= static_cast<std::size_t>(op.completions);
      last_batch_end_ = std::max(last_batch_end_, op.record.end_time);
    } else {
      TraceRecord record = shard.staging.staged()[merge_rec_cur_[best]++];
      // Batch records were staged under provisional shard-local sequence
      // numbers (-(local) - 2); the merge order assigns the globals.
      if (record.id <= -2 && record.kind == TraceEventKind::kBatchStart) {
        auto& seq_map = shard_batch_seq_[best];
        const auto local = static_cast<std::size_t>(-record.id) - 2;
        if (local >= seq_map.size()) seq_map.resize(local + 1, -1);
        seq_map[local] = next_batch_seq_++;
        record.id = seq_map[local];
      } else if (record.id <= -2 &&
                 record.kind == TraceEventKind::kBatchEnd) {
        record.id =
            shard_batch_seq_[best][static_cast<std::size_t>(-record.id) - 2];
      }
      trace_rec_->emit(record);
    }
  }
  for (SimShard& shard : shards_) {
    shard.staging.clear();
    shard.done.clear();
  }
}

void Simulator::dispatch(const SimEvent& event) {
  switch (event.kind) {
    case EventKind::kArrival:
      on_arrival(event.request);
      break;
    case EventKind::kStageEnd:
      on_stage_end(event.replica, event.stage, event.handle, event.comm_time);
      break;
    case EventKind::kDeliverToStage:
      deliver_to_stage(event.replica, event.stage, event.handle);
      break;
    case EventKind::kMigrated:
      on_migrated(event.request);
      break;
    default:
      VIDUR_CHECK_MSG(false, "unhandled simulator event kind");
  }
}

void Simulator::on_arrival(RequestState* request) {
  // detail carries tenant+1 so untagged (tenant -1) stays the 0 default;
  // the analysis engine uses it for per-tenant blame attribution.
  const int tenant = static_cast<int>(request->record.tenant);
  const auto tenant_detail = static_cast<std::uint8_t>(
      tenant < 0 ? 0 : std::min(tenant + 1, 255));
  if (tls_shard_ != nullptr) {
    // Pre-routed arrival on the shard's own timeline: the target was fixed
    // at run start, so routing reduces to the local enqueue. The arrival
    // tally is shard-private (folded into the counter at end of run); both
    // records go to the staging stream. Shedding needs an elastic fleet
    // and never applies here.
    SimShard& shard = *tls_shard_;
    trace_emit(local_trace(), TraceEventKind::kArrival, sim_now(), -1,
               request->record.id, request->record.prefill_tokens,
               request->record.decode_tokens, tenant_detail);
    ++shard.arrivals;
    trace_emit(local_trace(), TraceEventKind::kRouted, sim_now(),
               shard.replica, request->record.id);
    request->replica = shard.replica;
    request->queue_entry_time = sim_now();
    replicas_[static_cast<std::size_t>(shard.replica)].scheduler->enqueue(
        request);
    try_schedule(shard.replica);
    return;
  }
  trace_emit(trace_rec_, TraceEventKind::kArrival, events_.now(), -1,
       request->record.id, request->record.prefill_tokens,
       request->record.decode_tokens, tenant_detail);
  ctr_arrivals_->inc();
  if (rolling_) {
    rolling_->on_arrival(0, events_.now());
    const int track = tenant_track(request->record.tenant);
    if (track >= 0) rolling_->on_arrival(track, events_.now());
    rolling_request_delta(*request, +1);
  }
  // Graceful degradation: under a fault-induced capacity floor breach the
  // admission controller sheds the lowest-priority tenants at the door.
  if (maybe_shed(request)) return;
  route_request(request);
}

const std::vector<bool>& Simulator::arrival_mask() const {
  arrival_mask_scratch_.resize(static_cast<std::size_t>(num_slots_));
  for (ReplicaId r = 0; r < num_slots_; ++r)
    arrival_mask_scratch_[static_cast<std::size_t>(r)] =
        arrival_eligible(r) && (!cluster_ || cluster_->is_routable(r));
  return arrival_mask_scratch_;
}

void Simulator::route_request(RequestState* request) {
  static const std::vector<bool> kEveryReplica;  // empty mask = all routable
  // Pool deployments route over every slot with a role-and-activity mask;
  // the legacy forms shrink the routing domain (disaggregation) or mask on
  // elastic activity alone.
  const int routable = pool_mode() ? num_slots_
                       : config_.disagg.enabled()
                           ? config_.disagg.num_prefill_replicas
                           : config_.parallel.num_replicas;
  const std::vector<bool>& mask =
      pool_mode() ? arrival_mask()
                  : (cluster_ ? cluster_->routable_mask() : kEveryReplica);
  const ReplicaId target =
      global_.route(request, outstanding_counts(routable), mask);
  trace_emit(trace_rec_, TraceEventKind::kRouted, events_.now(), target,
       request->record.id);
  if (target >= 0) {
    request->replica = target;
    request->queue_entry_time = events_.now();
    rolling_pool_delta(target, +1);
    replicas_[static_cast<std::size_t>(target)].scheduler->enqueue(request);
    try_schedule(target);
  } else {
    // Deferred binding: every routable replica with room may pull it.
    for (ReplicaId r = 0; r < routable; ++r) try_schedule(r);
  }
}

void Simulator::reroute_waiting(ReplicaId replica_id) {
  Replica& replica = replicas_[static_cast<std::size_t>(replica_id)];
  // The draining replica is already masked out of the routable set, so
  // these land on surviving (or parked for warming) capacity.
  for (RequestState* r : replica.scheduler->take_waiting()) {
    r->replica = -1;
    ctr_reroutes_->inc();
    rolling_pool_delta(replica_id, -1);
    if (pool_mode() && pool_of(replica_id).role == PoolRole::kDecode) {
      // A draining decode replica's queued work is already prefilled: it
      // moves to another decode replica, paying the KV transfer again.
      trace_emit(trace_rec_, TraceEventKind::kMigrateStart, events_.now(),
           replica_id, r->record.id, r->kv_context);
      SimEvent ev;
      ev.kind = EventKind::kMigrated;
      ev.request = r;
      events_.schedule_event(events_.now() + kv_transfer_time(*r), ev);
    } else {
      route_request(r);
    }
  }
}

void Simulator::pull_deferred(ReplicaId replica_id) {
  // Shard context: pre-routing implies round-robin, which never parks, so
  // there is nothing to pull — and the central scheduler must not be
  // touched from a shard thread anyway.
  if (tls_shard_ != nullptr) return;
  if (!global_.has_parked_requests()) return;
  // Decode replicas never pull arrivals; their work comes via hand-off.
  if (!arrival_eligible(replica_id)) return;
  // Elastic fleets: only active replicas take new work (draining replicas
  // finish what they already own; cold replicas have nothing to run on).
  if (cluster_ && !cluster_->is_routable(replica_id)) return;
  Replica& replica = replicas_[static_cast<std::size_t>(replica_id)];
  // Keep at most one request staged locally; binding happens as late as
  // possible so a faster replica can take the next arrival.
  if (replica.scheduler->num_waiting() > 0) return;
  for (RequestState* r : global_.pull(replica_id, 1)) {
    r->replica = replica_id;
    r->queue_entry_time = events_.now();
    trace_emit(trace_rec_, TraceEventKind::kRouted, events_.now(), replica_id,
         r->record.id);
    rolling_pool_delta(replica_id, +1);
    replica.scheduler->enqueue(r);
  }
}

void Simulator::try_schedule(ReplicaId replica_id) {
  Replica& replica = replicas_[static_cast<std::size_t>(replica_id)];
  // Synchronous pipeline: at most one micro-batch per stage in flight.
  // stages was sized to the replica's own pipeline depth (per pool).
  while (replica.batches_in_flight < static_cast<int>(replica.stages.size())) {
    pull_deferred(replica_id);
    StageScheduler::BatchHandle handle;
    if (replica.free_handles.empty()) {
      handle =
          static_cast<StageScheduler::BatchHandle>(replica.in_flight.size());
      replica.in_flight.emplace_back();
    } else {
      handle = replica.free_handles.back();
      replica.free_handles.pop_back();
    }
    InFlightBatch& record = replica.in_flight[static_cast<std::size_t>(handle)];
    replica.scheduler->schedule_into(record.spec, sim_now());
    if (record.spec.empty()) {
      replica.free_handles.push_back(handle);
      return;
    }
    record.agg = record.spec.aggregates();
    record.replica = replica_id;
    record.start_time = sim_now();
    record.flops = batch_flops(config_.model, record.agg);
    record.kv_utilization = replica.scheduler->blocks().utilization();
    record.live = true;
    record.cancelled = false;
    TraceRecorder* const trace = local_trace();
    if (trace != nullptr) {
      // Shard context stages under a provisional local sequence number,
      // -(local) - 2 (never colliding with the -1 "untraced" sentinel);
      // merge_round assigns the globals in cross-shard time order.
      record.trace_seq = tls_shard_ != nullptr
                             ? -(tls_shard_->next_local_batch++) - 2
                             : next_batch_seq_++;
      trace_emit(trace, TraceEventKind::kBatchStart, sim_now(), replica_id,
           record.trace_seq, record.spec.size(), record.agg.total_q);
    }

    ++replica.batches_in_flight;
    if (replica.stages[0].submit(handle)) start_stage(replica_id, 0, handle);
  }
}

void Simulator::start_stage(ReplicaId replica_id, StageId stage,
                            StageScheduler::BatchHandle handle) {
  Replica& replica = replicas_[static_cast<std::size_t>(replica_id)];
  const InFlightBatch& batch =
      replica.in_flight[static_cast<std::size_t>(handle)];
  VIDUR_CHECK_MSG(batch.live, "stage started for a retired batch handle");
  if (batch.cancelled) {
    // Dead replica's pipeline: the stage queues still advance (events that
    // were already scheduled must drain) but no backend time is modeled.
    SimEvent ev;
    ev.kind = EventKind::kStageEnd;
    ev.replica = replica_id;
    ev.stage = stage;
    ev.handle = handle;
    ev.comm_time = 0.0;
    local_events().schedule_event(sim_now(), ev);
    return;
  }
  const StageTiming timing =
      replica.backend->stage_timing(batch.spec, batch.agg, stage);
  VIDUR_CHECK(timing.compute >= 0 && timing.comm >= 0);
  // Synchronous pipeline: the send occupies the stage. Asynchronous: the
  // stage frees after compute; the send delays only the downstream hand-off.
  Seconds busy = config_.async_pipeline_comm ? timing.compute : timing.total();
  const Seconds handoff_lag = config_.async_pipeline_comm ? timing.comm : 0.0;
  if (stage == 0) busy += replica.backend->cpu_overhead(batch.spec);
  // Straggler mode (src/fault/): a degraded replica runs everything slower.
  busy *= replica.slow_factor;
  if (config_.collect_operator_metrics)
    metrics_.record_operators(
        replica.backend->stage_breakdown(batch.spec, stage).per_op);
  SimEvent ev;
  ev.kind = EventKind::kStageEnd;
  ev.replica = replica_id;
  ev.stage = stage;
  ev.handle = handle;
  ev.comm_time = handoff_lag;
  local_events().schedule_event(sim_now() + busy, ev);
}

void Simulator::on_stage_end(ReplicaId replica_id, StageId stage,
                             StageScheduler::BatchHandle handle,
                             Seconds comm_time) {
  Replica& replica = replicas_[static_cast<std::size_t>(replica_id)];

  // Advance this stage's queue.
  const auto next = replica.stages[static_cast<std::size_t>(stage)].complete();
  if (next >= 0) start_stage(replica_id, stage, next);

  if (stage + 1 < static_cast<int>(replica.stages.size())) {
    if (comm_time > 0) {
      // Asynchronous send: activations arrive downstream after the wire
      // delay, while this stage is already free for its next micro-batch.
      SimEvent ev;
      ev.kind = EventKind::kDeliverToStage;
      ev.replica = replica_id;
      ev.stage = stage + 1;
      ev.handle = handle;
      local_events().schedule_event(sim_now() + comm_time, ev);
    } else {
      deliver_to_stage(replica_id, stage + 1, handle);
    }
  } else {
    finish_batch(replica_id, handle);
  }
  // Stage 0 freeing up or a batch completing can unblock scheduling.
  try_schedule(replica_id);
}

void Simulator::deliver_to_stage(ReplicaId replica_id, StageId stage,
                                 StageScheduler::BatchHandle handle) {
  Replica& replica = replicas_[static_cast<std::size_t>(replica_id)];
  if (replica.stages[static_cast<std::size_t>(stage)].submit(handle))
    start_stage(replica_id, stage, handle);
}

void Simulator::finish_batch(ReplicaId replica_id,
                             StageScheduler::BatchHandle handle) {
  Replica& replica = replicas_[static_cast<std::size_t>(replica_id)];
  VIDUR_CHECK(handle >= 0 &&
              static_cast<std::size_t>(handle) < replica.in_flight.size());
  InFlightBatch& batch = replica.in_flight[static_cast<std::size_t>(handle)];
  VIDUR_CHECK_MSG(batch.live, "batch finished twice for one handle");

  if (batch.cancelled) {
    // The kill already emitted this batch's end record and recovered its
    // requests; just retire the slot (no metrics, no request progress).
    --replica.batches_in_flight;
    batch.live = false;
    batch.cancelled = false;
    replica.free_handles.push_back(handle);
    return;
  }

  BatchRecord record;
  record.replica = replica_id;
  record.start_time = batch.start_time;
  record.end_time = sim_now();
  record.q_tokens = batch.agg.total_q;
  record.batch_size = batch.spec.size();
  record.flops = batch.flops;
  const ParallelConfig& parallel = parallel_of(replica_id);
  record.hbm_bytes_per_gpu = batch_hbm_bytes_per_gpu(
      config_.model, parallel.tensor_parallel, parallel.pipeline_parallel,
      batch.agg);
  record.kv_utilization = batch.kv_utilization;
  if (batch.trace_seq != -1) {
    trace_emit(local_trace(), TraceEventKind::kBatchEnd, sim_now(), replica_id,
         batch.trace_seq, batch.spec.size());
    batch.trace_seq = -1;
  }

  const auto finished = replica.scheduler->on_batch_end(batch.spec, sim_now());
  if (tls_shard_ != nullptr) {
    // Shard context: the cross-shard effects (batch metrics, fleet
    // counters, remaining-work accounting) are staged and applied at the
    // merge barrier in global time order; trace_pos pins this op's
    // interleave position within the shard's record stream.
    tls_shard_->done.push_back(
        ShardDone{record, static_cast<std::int64_t>(finished.size()),
                  tls_shard_->staging.staged().size()});
  } else {
    metrics_.record_batch(record);
    ctr_batches_->inc();
    ctr_completions_->inc(finished.size());
    rolling_completions(replica_id, finished);
    remaining_requests_ -= finished.size();
    last_batch_end_ = events_.now();
  }
  if (is_prefill_replica(replica_id)) migrate_prefilled(replica_id, batch.spec);
  --replica.batches_in_flight;
  batch.live = false;
  replica.free_handles.push_back(handle);
  // A draining replica that just ran dry hands its slot back.
  if (cluster_ && replica.batches_in_flight == 0 &&
      replica.scheduler->outstanding() == 0)
    cluster_->notify_idle(replica_id);
}

void Simulator::migrate_prefilled(ReplicaId replica_id,
                                  const BatchSpec& batch) {
  ReplicaScheduler& scheduler =
      *replicas_[static_cast<std::size_t>(replica_id)].scheduler;
  for (const BatchItem& item : batch.items) {
    if (!item.completes_prefill) continue;
    RequestState* r = item.state;
    // Requests that finished at prefill (single output token), were
    // restarted concurrently, or already left the scheduler are not
    // migrated.
    if (r == nullptr || !r->admitted || !r->prefill_complete() ||
        r->finished())
      continue;
    scheduler.extract(r);
    trace_emit(trace_rec_, TraceEventKind::kMigrateStart, events_.now(), replica_id,
         r->record.id, r->kv_context);
    rolling_pool_delta(replica_id, -1);
    SimEvent ev;
    ev.kind = EventKind::kMigrated;
    ev.request = r;
    events_.schedule_event(events_.now() + kv_transfer_time(*r), ev);
  }
}

void Simulator::on_migrated(RequestState* request) {
  // Least-outstanding routing among decode replicas (deterministic:
  // strictly-lower wins, so the lowest eligible id takes every tie).
  const auto outstanding = [this](ReplicaId id) {
    return replicas_[static_cast<std::size_t>(id)].scheduler->outstanding();
  };
  ReplicaId best = -1;
  int best_count = 0;
  if (pool_mode()) {
    // Elastic decode pools: only active replicas take hand-offs (the
    // decode floor >= 1 guarantees one exists).
    for (ReplicaId r = 0; r < num_slots_; ++r) {
      if (pool_of(r).role != PoolRole::kDecode) continue;
      if (cluster_ && !cluster_->is_routable(r)) continue;
      const int count = outstanding(r);
      if (best < 0 || count < best_count) {
        best = r;
        best_count = count;
      }
    }
    VIDUR_CHECK_MSG(best >= 0,
                    "no active decode replica to receive a prefilled "
                    "request");
  } else {
    best = config_.disagg.num_prefill_replicas;
    best_count = outstanding(best);
    for (ReplicaId r = best + 1; r < config_.parallel.num_replicas; ++r) {
      const int count = outstanding(r);
      if (count < best_count) {
        best = r;
        best_count = count;
      }
    }
  }
  request->replica = best;
  request->queue_entry_time = events_.now();
  // Next batch membership on the decode replica emits a resume record, so
  // the analysis engine can separate decode-queue wait from decode proper.
  request->resched_pending = true;
  trace_emit(trace_rec_, TraceEventKind::kMigrateEnd, events_.now(), best,
       request->record.id);
  ctr_migrations_->inc();
  rolling_pool_delta(best, +1);
  replicas_[static_cast<std::size_t>(best)].scheduler->enqueue(request);
  try_schedule(best);
}

Seconds Simulator::kv_transfer_time(const RequestState& request) const {
  const auto bytes = static_cast<double>(request.kv_context) *
                     static_cast<double>(config_.model.kv_bytes_per_token());
  return bytes / (config_.disagg.transfer_bandwidth_gbps * 1e9) +
         config_.disagg.transfer_latency;
}

void Simulator::aggregate_prefix_cache(PrefixCacheMetrics& out) const {
  out.enabled = true;
  std::map<TenantId, PrefixCacheMetrics::Slice> by_tenant;
  std::vector<PrefixCacheMetrics::Slice> by_pool;
  if (pool_mode()) {
    by_pool.resize(config_.pools.size());
    for (std::size_t p = 0; p < config_.pools.size(); ++p)
      by_pool[p].name = config_.pools[p].name;
  }
  for (ReplicaId r = 0; r < num_slots_; ++r) {
    const PrefixCache* cache = replicas_[static_cast<std::size_t>(r)].cache.get();
    if (cache == nullptr) continue;
    const PrefixCacheStats& s = cache->stats();
    out.lookups += static_cast<std::int64_t>(s.lookups);
    out.hits += static_cast<std::int64_t>(s.hits);
    out.misses += static_cast<std::int64_t>(s.misses);
    out.inserted_blocks += static_cast<std::int64_t>(s.inserted_blocks);
    out.evicted_blocks += static_cast<std::int64_t>(s.evicted_blocks);
    out.tokens_saved += s.tokens_saved;
    out.resident_sessions += cache->resident_sessions();
    // Replica-wide KV bytes the hit prefills did not recompute, at the
    // slot's own memory plan (heterogeneous pools differ per slot).
    const MemoryPlan& plan =
        pool_mode() ? pool_plans_[static_cast<std::size_t>(
                          pool_of_slot_[static_cast<std::size_t>(r)])]
                    : memory_plan_;
    out.bytes_saved += static_cast<double>(s.tokens_saved) *
                       static_cast<double>(plan.kv_bytes_per_token_per_gpu) *
                       static_cast<double>(parallel_of(r).gpus_per_replica());
    for (const auto& [tenant, ts] : cache->tenant_stats()) {
      PrefixCacheMetrics::Slice& slice = by_tenant[tenant];
      slice.lookups += static_cast<std::int64_t>(ts.lookups);
      slice.hits += static_cast<std::int64_t>(ts.hits);
      slice.misses += static_cast<std::int64_t>(ts.misses);
      slice.tokens_saved += ts.tokens_saved;
    }
    if (pool_mode()) {
      PrefixCacheMetrics::Slice& slice =
          by_pool[static_cast<std::size_t>(
              pool_of_slot_[static_cast<std::size_t>(r)])];
      slice.lookups += static_cast<std::int64_t>(s.lookups);
      slice.hits += static_cast<std::int64_t>(s.hits);
      slice.misses += static_cast<std::int64_t>(s.misses);
      slice.tokens_saved += s.tokens_saved;
    }
  }
  for (auto& [tenant, slice] : by_tenant) {
    slice.name = "tenant-" + std::to_string(tenant);
    for (const TenantInfo& info : config_.tenants)
      if (info.id == tenant) slice.name = info.name;
    out.by_tenant.push_back(std::move(slice));
  }
  out.by_pool = std::move(by_pool);
  // The registry snapshot carries the same totals for dashboards.
  registry_->counter("kvcache.lookups")->value =
      static_cast<std::uint64_t>(out.lookups);
  registry_->counter("kvcache.hits")->value =
      static_cast<std::uint64_t>(out.hits);
  registry_->counter("kvcache.misses")->value =
      static_cast<std::uint64_t>(out.misses);
  registry_->counter("kvcache.inserted_blocks")->value =
      static_cast<std::uint64_t>(out.inserted_blocks);
  registry_->counter("kvcache.evicted_blocks")->value =
      static_cast<std::uint64_t>(out.evicted_blocks);
  registry_->counter("kvcache.prefill_tokens_saved")->value =
      static_cast<std::uint64_t>(out.tokens_saved);
}

void Simulator::aggregate_resilience(ResilienceMetrics& out) const {
  out.enabled = true;
  const FaultInjector::Log& log = injector_->log();
  out.num_crashes = log.crashes;
  out.num_spot_reclaims = log.spot_reclaims;
  out.num_degrade_events = log.degrade_events;
  out.num_retries = num_retries_;
  out.num_handoffs = num_handoffs_;
  out.num_shed = num_shed_;
  out.num_lost = num_lost_;
  out.tokens_reprefilled = tokens_reprefilled_;
  out.decode_tokens_discarded = decode_tokens_discarded_;
  out.num_repairs = num_repairs_;
  out.mttr_s =
      num_repairs_ > 0 ? mttr_sum_ / static_cast<double>(num_repairs_) : 0.0;
  // SLO attainment split: requests of SLO-carrying tenants, fault-impacted
  // (retried / handed off / shed / lost) vs clean. Shed and lost requests
  // never completed — they count as missed on the impacted side, which is
  // what makes the with-vs-without-faults delta honest.
  std::int64_t clean_total = 0, clean_met = 0, impacted_total = 0,
               impacted_met = 0;
  for (const RequestState& state : states_) {
    const RequestRecord& rec = state.record;
    const SloSpec* slo =
        rec.tenant >= 0 &&
                static_cast<std::size_t>(rec.tenant) < tenant_slo_by_id_.size()
            ? tenant_slo_by_id_[static_cast<std::size_t>(rec.tenant)]
            : nullptr;
    if (slo == nullptr || !slo->enabled()) continue;
    bool met = false;
    if (rec.completed()) {
      met = true;
      Seconds worst_tbt = -1.0;
      for (std::size_t i = 1; i < rec.token_times.size(); ++i)
        worst_tbt =
            std::max(worst_tbt, rec.token_times[i] - rec.token_times[i - 1]);
      if (slo->ttft_target > 0 && rec.ttft() > slo->ttft_target) met = false;
      if (slo->tbt_target > 0 && worst_tbt > slo->tbt_target) met = false;
    } else if (!rec.shed && !rec.lost) {
      continue;  // never finished for another reason (max_sim_time cutoff)
    }
    if (rec.fault_impacted()) {
      ++impacted_total;
      impacted_met += met ? 1 : 0;
    } else {
      ++clean_total;
      clean_met += met ? 1 : 0;
    }
  }
  out.slo_attainment_clean =
      clean_total > 0
          ? static_cast<double>(clean_met) / static_cast<double>(clean_total)
          : -1.0;
  out.slo_attainment_impacted =
      impacted_total > 0 ? static_cast<double>(impacted_met) /
                               static_cast<double>(impacted_total)
                         : -1.0;
  // The registry snapshot carries the same tallies for dashboards.
  registry_->counter("faults.crashes")->value =
      static_cast<std::uint64_t>(out.num_crashes);
  registry_->counter("faults.spot_reclaims")->value =
      static_cast<std::uint64_t>(out.num_spot_reclaims);
  registry_->counter("faults.degrade_events")->value =
      static_cast<std::uint64_t>(out.num_degrade_events);
  registry_->counter("faults.retries")->value =
      static_cast<std::uint64_t>(out.num_retries);
  registry_->counter("faults.handoffs")->value =
      static_cast<std::uint64_t>(out.num_handoffs);
  registry_->counter("faults.shed")->value =
      static_cast<std::uint64_t>(out.num_shed);
  registry_->counter("faults.lost")->value =
      static_cast<std::uint64_t>(out.num_lost);
  registry_->counter("faults.repairs")->value =
      static_cast<std::uint64_t>(out.num_repairs);
  registry_->counter("faults.tokens_reprefilled")->value =
      static_cast<std::uint64_t>(out.tokens_reprefilled);
  registry_->counter("faults.decode_tokens_discarded")->value =
      static_cast<std::uint64_t>(out.decode_tokens_discarded);
  registry_->gauge("faults.mttr_s")->set(out.mttr_s);
}

const std::vector<int>& Simulator::outstanding_counts(int count) const {
  outstanding_scratch_.clear();
  outstanding_scratch_.reserve(static_cast<std::size_t>(count));
  for (int r = 0; r < count; ++r)
    outstanding_scratch_.push_back(
        replicas_[static_cast<std::size_t>(r)].scheduler->outstanding());
  return outstanding_scratch_;
}

}  // namespace vidur
