// Configuration of disaggregated prefill/decode serving (Splitwise, Patel
// et al. 2023; DistServe, Zhong et al. 2024 — discussed in paper §2.2).
#pragma once

#include "common/types.h"

namespace vidur {

/// A fixed subset of replicas runs only prompt processing; completed prompts
/// ship their KV cache to a decode replica over the cluster interconnect.
struct DisaggConfig {
  /// Replicas [0, num_prefill_replicas) serve prefill; the rest decode.
  /// 0 disables disaggregation (all replicas unified).
  int num_prefill_replicas = 0;
  /// KV-transfer bandwidth between a prefill and a decode replica, GB/s
  /// (default: one 200 Gb/s InfiniBand rail ~ 25 GB/s).
  double transfer_bandwidth_gbps = 25.0;
  /// Fixed per-transfer setup latency (rendezvous + registration).
  Seconds transfer_latency = 2e-3;

  bool enabled() const { return num_prefill_replicas > 0; }

  bool operator==(const DisaggConfig&) const = default;
};

}  // namespace vidur
